"""Unit tests for the deterministic fault injector."""

from __future__ import annotations

import pytest

from repro.errors import BackendUnavailable
from repro.storage.base import TimeScope
from repro.storage.chaos import FaultInjectingStore, FaultPlan
from repro.rpe.parser import parse_rpe


def wrap(mem_store, plan=None, sleeper=None):
    return FaultInjectingStore(
        mem_store, plan, sleeper=sleeper or (lambda seconds: None)
    )


class TestZeroFaultPassThrough:
    def test_default_plan_injects_nothing(self):
        assert FaultPlan().injects_nothing()
        assert not FaultPlan(error_rate=0.1).injects_nothing()
        assert not FaultPlan(hard_down=True).injects_nothing()

    def test_wrapped_store_behaves_like_bare(self, mem_store):
        chaotic = wrap(mem_store)
        host = chaotic.insert_node("Host", {"name": "h1"})
        vm = chaotic.insert_node("VMWare", {"name": "vm1", "status": "Green"})
        edge = chaotic.insert_edge("OnServer", vm, host)
        assert edge > 0
        assert chaotic.class_count("Host") == 1
        assert chaotic.get_element(host, TimeScope.current()).fields["name"] == "h1"
        assert [e.uid for e in chaotic.out_edges(vm, TimeScope.current())] == [edge]
        chaotic.update_element(host, {"status": "Red"})
        chaotic.delete_element(edge)
        assert chaotic.out_edges(vm, TimeScope.current()) == []
        assert chaotic.chaos.total_faults == 0
        assert chaotic.chaos.total_calls == 9

    def test_data_version_is_proxied(self, mem_store):
        chaotic = wrap(mem_store)
        before = chaotic.data_version
        chaotic.insert_node("Host", {"name": "h"})
        assert chaotic.data_version == mem_store.data_version > before


class TestFaultSchedules:
    def test_fail_first_is_per_method(self, mem_store):
        chaotic = wrap(mem_store, FaultPlan(fail_first=2))
        for _ in range(2):
            with pytest.raises(BackendUnavailable):
                chaotic.insert_node("Host", {"name": "h"})
        # insert_node has burned its budget; counts() still has its own.
        uid = chaotic.insert_node("Host", {"name": "h"})
        assert uid > 0
        with pytest.raises(BackendUnavailable):
            chaotic.counts()
        assert chaotic.chaos.faults["transient"] == 3

    def test_fail_every_nth_global_call(self, mem_store):
        chaotic = wrap(mem_store, FaultPlan(fail_every=3))
        outcomes = []
        for _ in range(6):
            try:
                chaotic.class_count("Host")
                outcomes.append("ok")
            except BackendUnavailable:
                outcomes.append("fault")
        assert outcomes == ["ok", "ok", "fault", "ok", "ok", "fault"]

    def test_fail_after_goes_hard_down(self, mem_store):
        chaotic = wrap(mem_store, FaultPlan(fail_after=2))
        chaotic.class_count("Host")
        chaotic.class_count("Host")
        for _ in range(3):
            with pytest.raises(BackendUnavailable):
                chaotic.class_count("Host")
        assert chaotic.chaos.faults["hard_down"] == 3

    def test_hard_down_and_recovery(self, mem_store):
        chaotic = wrap(mem_store)
        chaotic.set_hard_down()
        with pytest.raises(BackendUnavailable) as excinfo:
            chaotic.counts()
        assert excinfo.value.store == chaotic.name
        chaotic.set_hard_down(False)
        assert isinstance(chaotic.counts(), dict)

    def test_error_rate_is_deterministic_per_seed(self, mem_store):
        def schedule(seed):
            chaotic = wrap(mem_store, FaultPlan(seed=seed, error_rate=0.5))
            outcome = []
            for _ in range(20):
                try:
                    chaotic.class_count("Host")
                    outcome.append(True)
                except BackendUnavailable:
                    outcome.append(False)
            return outcome

        first = schedule(123)
        assert schedule(123) == first
        assert 0 < sum(first) < 20  # some pass, some fault at rate 0.5
        assert schedule(321) != first

    def test_method_filter_restricts_injection(self, mem_store):
        chaotic = wrap(
            mem_store,
            FaultPlan(hard_down=True, methods=frozenset({"counts"})),
        )
        assert chaotic.insert_node("Host", {"name": "h"}) > 0
        with pytest.raises(BackendUnavailable):
            chaotic.counts()

    def test_heal_clears_the_schedule_but_keeps_history(self, mem_store):
        chaotic = wrap(mem_store, FaultPlan(seed=5, hard_down=True))
        with pytest.raises(BackendUnavailable):
            chaotic.counts()
        chaotic.heal()
        assert chaotic.plan == FaultPlan(seed=5)
        assert isinstance(chaotic.counts(), dict)
        assert chaotic.chaos.total_faults == 1
        assert chaotic.chaos.total_calls == 2

    def test_faults_fire_before_delegation(self, mem_store):
        # At-most-once: a faulted write must not reach the backend.
        chaotic = wrap(mem_store, FaultPlan(fail_first=1))
        with pytest.raises(BackendUnavailable):
            chaotic.insert_node("Host", {"name": "h"})
        assert mem_store.class_count("Host") == 0
        assert chaotic.data_version == 0


class TestLatency:
    def test_fixed_latency_and_slow_scans(self, mem_store):
        sleeps = []
        chaotic = wrap(
            mem_store,
            FaultPlan(latency=0.01, slow_scan=0.09),
            sleeper=sleeps.append,
        )
        chaotic.insert_node("Host", {"name": "h"})
        atom = parse_rpe("Host()").bind(mem_store.schema)
        chaotic.scan_atom(atom, TimeScope.current())
        assert sleeps == [0.01, pytest.approx(0.10)]

    def test_latency_spikes_are_probabilistic_and_seeded(self, mem_store):
        sleeps = []
        chaotic = wrap(
            mem_store,
            FaultPlan(seed=9, latency_spike_rate=0.5, latency_spike=1.0),
            sleeper=sleeps.append,
        )
        for _ in range(20):
            chaotic.class_count("Host")
        assert 0 < len(sleeps) < 20
        assert all(s == 1.0 for s in sleeps)


class TestAccounting:
    def test_log_records_call_index_method_and_kind(self, mem_store):
        chaotic = wrap(mem_store, FaultPlan(fail_first=1))
        with pytest.raises(BackendUnavailable):
            chaotic.counts()
        chaotic.counts()
        (fault,) = chaotic.chaos.log
        assert (fault.call_index, fault.method, fault.kind) == (1, "counts", "transient")
        assert chaotic.chaos.calls == {"counts": 2}

    def test_find_pathways_is_delegated_to_inner(self, any_store):
        # The wrapper must preserve the backend's own evaluation strategy
        # (the relational store's set-at-a-time SQL in particular).
        from repro.plan.planner import Planner

        chaotic = wrap(any_store)
        host = chaotic.insert_node("Host", {"name": "h1"})
        vm = chaotic.insert_node("VMWare", {"name": "vm1", "status": "Green"})
        chaotic.insert_edge("OnServer", vm, host)
        program = Planner(any_store.schema).compile("VM()->OnServer()->Host()")
        bare = [p.key() for p in any_store.find_pathways(program, TimeScope.current())]
        wrapped = [p.key() for p in chaotic.find_pathways(program, TimeScope.current())]
        assert wrapped == bare
        assert chaotic.chaos.calls["find_pathways"] == 1
