"""Relational backend durability: reopening a database file."""

import pytest

from repro.errors import UniquenessError
from repro.plan.executor import QueryExecutor
from repro.schema.builtin import build_network_schema
from repro.storage.base import TimeScope
from repro.storage.relational.store import RelationalStore
from repro.temporal.clock import TransactionClock
from repro.temporal.interval import Interval

T0 = 1_000.0


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "nepal.db")


def create(db_path, start=T0):
    return RelationalStore(
        build_network_schema(), clock=TransactionClock(start=start), path=db_path
    )


def test_reopen_preserves_current_and_history(db_path):
    store = create(db_path)
    host = store.insert_node("Host", {"name": "h1"})
    vm = store.insert_node("VM", {"name": "v1", "status": "Green"})
    store.insert_edge("OnServer", vm, host)
    store.clock.advance(50)
    store.update_element(vm, {"status": "Red"})
    store.connection().close()

    reopened = create(db_path, start=T0 + 100)
    executor = QueryExecutor({"default": reopened})
    now = executor.execute(
        "Select source(P).status From PATHS P "
        "Where P MATCHES VM()->OnServer()->Host()"
    )
    assert now.scalars() == ["Red"]
    past = executor.execute(f"AT {T0 + 10} Select source(P).status From PATHS P Where P MATCHES VM()")
    assert past.scalars() == ["Green"]
    versions = reopened.versions(vm, Interval(0, float("inf")))
    assert len(versions) == 2


def test_reopen_restores_uid_allocator(db_path):
    store = create(db_path)
    uids = [store.insert_node("Host", {"name": f"h{i}"}) for i in range(3)]
    store.connection().close()

    reopened = create(db_path, start=T0 + 1)
    fresh = reopened.insert_node("Host", {"name": "later"})
    assert fresh > max(uids)
    with pytest.raises(UniquenessError):
        reopened.insert_node("Host", {"name": "dup"}, uid=uids[0])


def test_reopen_restores_edge_endpoints_for_cascade(db_path):
    store = create(db_path)
    host = store.insert_node("Host", {"name": "h1"})
    vm = store.insert_node("VM", {"name": "v1"})
    edge = store.insert_edge("OnServer", vm, host)
    store.connection().close()

    reopened = create(db_path, start=T0 + 100)
    reopened.clock.advance(1)
    reopened.delete_element(vm)  # must cascade to the edge
    assert reopened.get_element(edge, TimeScope.current()) is None


def test_reopen_bumps_clock_past_stored_times(db_path):
    store = create(db_path, start=T0 + 500)
    store.insert_node("Host", {"name": "h1"})
    store.connection().close()

    # Reopening with an earlier clock must not produce backwards time.
    reopened = create(db_path, start=T0)
    assert reopened.clock.now() >= T0 + 500
    uid = reopened.insert_node("Host", {"name": "h2"})
    record = reopened.get_element(uid, TimeScope.current())
    assert record.period.start >= T0 + 500


def test_reopen_counts_match(db_path):
    store = create(db_path)
    host = store.insert_node("Host", {"name": "h1"})
    vm = store.insert_node("VM", {"name": "v1"})
    store.insert_edge("OnServer", vm, host)
    store.clock.advance(10)
    store.delete_element(vm)
    before = store.counts()
    store.connection().close()

    reopened = create(db_path, start=T0 + 100)
    assert reopened.counts() == before
