"""Crash-atomicity matrix: every injected death recovers to a commit boundary.

Two layers of injection:

* in-process :class:`CrashPoint` hooks at each durability boundary — fast,
  deterministic, and precise about *where* the death happens;
* real ``SIGKILL`` of a writer subprocess (marked ``durability``) — nothing
  simulated, the journal is whatever the kernel left behind.

Both compare the recovered store's :func:`history_digest` against the set of
*commit-prefix* digests produced by a never-crashed oracle replaying the same
scripted workload, so a recovered state is accepted only if it equals the
database exactly as of some commit boundary.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.schema.registry import Schema
from repro.storage.chaos import CrashPoint
from repro.storage.durable import WAL_FILE, DurableStore, recover
from repro.storage.memgraph.store import MemGraphStore
from repro.storage.wal import history_digest
from repro.temporal.clock import TransactionClock

T0 = 1_000.0


def build_schema() -> Schema:
    schema = Schema("crash-test")
    schema.define_node("Box", fields={"status": "string", "size": "integer"})
    schema.define_edge("Link", fields={"weight": "integer"})
    return schema


def dump_report(report, name: str) -> None:
    """Persist the recovery report when CI asks for artifacts."""
    directory = os.environ.get("NEPAL_RECOVERY_REPORT_DIR")
    if not directory:
        return
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, f"{name}.json"), "w") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# the scripted workload and its commit-prefix oracle
# ----------------------------------------------------------------------

def workload_units():
    """The workload as a list of commit units (each atomic under crashes)."""

    def u_insert_a(s):
        s.insert_node("Box", {"status": "up", "size": 1}, uid=1)

    def u_insert_b(s):
        s.clock.advance(1)
        s.insert_node("Box", {"status": "up"}, uid=2)

    def u_link(s):
        s.clock.advance(1)
        s.insert_edge("Link", 1, 2, {"weight": 7}, uid=3)

    def u_update(s):
        s.clock.advance(1)
        s.update_element(1, {"status": "down", "size": None})

    def u_batch(s):
        s.clock.advance(1)
        with s.bulk():
            s.insert_node("Box", {"status": "batched"}, uid=4)
            s.insert_edge("Link", 2, 4, {"weight": 9}, uid=5)
            s.delete_element(1)

    def u_reinsert(s):
        s.clock.advance(1)
        s.reinsert(1)

    return [u_insert_a, u_insert_b, u_link, u_update, u_batch, u_reinsert]


def oracle_prefixes():
    """Digest and data_version after every commit boundary, crash-free."""
    store = MemGraphStore(build_schema(), clock=TransactionClock(start=T0))
    prefixes = [(history_digest(store), store.data_version)]
    for unit in workload_units():
        unit(store)
        prefixes.append((history_digest(store), store.data_version))
    return prefixes


def run_workload(store) -> None:
    for unit in workload_units():
        unit(store)


def open_durable(data_dir, crash_hook=None) -> DurableStore:
    return DurableStore.open(
        data_dir, build_schema(),
        clock=TransactionClock(start=T0), crash_hook=crash_hook,
    )


def assert_commit_boundary(report, store, label: str) -> None:
    """The recovered store must equal the oracle at some commit boundary,
    with a data_version at least as high as that boundary's."""
    dump_report(report, label)
    digest = history_digest(store)
    prefixes = oracle_prefixes()
    matches = [i for i, (d, _) in enumerate(prefixes) if d == digest]
    assert matches, f"{label}: recovered state matches no commit boundary"
    boundary_dv = prefixes[matches[0]][1]
    assert store.data_version >= boundary_dv, (
        f"{label}: data_version {store.data_version} below "
        f"boundary's {boundary_dv} — stale plan-cache entries would survive"
    )


def crash_on_nth(point: str, n: int):
    seen = {"count": 0}

    def hook(reached: str) -> None:
        if reached == point:
            seen["count"] += 1
            if seen["count"] == n:
                raise CrashPoint(point)

    return hook


# ----------------------------------------------------------------------
# in-process crash points
# ----------------------------------------------------------------------

# (label, point, nth occurrence, the boundary index we expect to land on;
# None = any boundary is acceptable, only atomicity is asserted)
CRASH_SCENARIOS = [
    ("append-first", "wal.append", 1, 0),       # die before anything journaled
    ("append-mid", "wal.append", 3, 2),         # before journaling the update
    ("append-in-batch", "wal.append", 6, 4),    # member journal write, mid-batch
    ("applied-first", "wal.applied", 1, None),  # journaled but maybe unsynced
    ("applied-mid-batch", "wal.applied", 5, 4), # applied inside the open batch
    ("bulk-commit", "bulk.commit", 1, 4),       # batch built, commit not journaled
    ("bulk-synced", "bulk.synced", 1, 5),       # commit journaled and fsynced
]


@pytest.mark.parametrize(
    "label, point, nth, boundary", CRASH_SCENARIOS,
    ids=[s[0] for s in CRASH_SCENARIOS],
)
def test_crash_point_recovers_to_commit_boundary(tmp_path, label, point, nth, boundary):
    data_dir = tmp_path / "data"
    store = open_durable(data_dir, crash_hook=crash_on_nth(point, nth))
    with pytest.raises(CrashPoint):
        run_workload(store)
    # No close(): a dead process flushes nothing further.

    recovered = open_durable(data_dir)
    assert_commit_boundary(recovered.recovery, recovered, f"crash-{label}")
    if boundary is not None:
        expected_digest, _ = oracle_prefixes()[boundary]
        assert history_digest(recovered) == expected_digest
    recovered.close()


def test_crash_during_checkpoint_loses_nothing(tmp_path):
    """Deaths at every checkpoint stage preserve the full history."""
    for point in ("checkpoint.write", "checkpoint.replace", "checkpoint.truncate"):
        data_dir = tmp_path / point
        store = open_durable(data_dir, crash_hook=crash_on_nth(point, 1))
        run_workload(store)
        full = history_digest(store)
        with pytest.raises(CrashPoint):
            store.checkpoint()

        recovered = open_durable(data_dir)
        dump_report(recovered.recovery, f"checkpoint-{point}")
        assert history_digest(recovered) == full
        # And the survivor can checkpoint cleanly afterwards.
        recovered.checkpoint()
        recovered.close()
        reopened = open_durable(data_dir)
        assert history_digest(reopened) == full
        reopened.close()


def test_every_wal_truncation_recovers_to_commit_boundary(tmp_path):
    """Byte-by-byte torn-tail property over the whole journal.

    For *every* possible truncation of the WAL file — as if the disk lost
    an arbitrary suffix — recovery must land exactly on a commit boundary.
    """
    data_dir = tmp_path / "data"
    store = open_durable(data_dir)
    run_workload(store)
    store.close()
    wal_path = data_dir / WAL_FILE
    data = wal_path.read_bytes()
    prefixes = oracle_prefixes()
    digests = [d for d, _ in prefixes]

    landed = set()
    for cut in range(len(data) + 1):
        wal_path.write_bytes(data[:cut])
        target = MemGraphStore(build_schema(), clock=TransactionClock(start=0.0))
        report = recover(data_dir, target)
        digest = history_digest(target)
        assert digest in digests, f"cut at byte {cut} left a non-boundary state"
        assert report.committed_offset <= cut
        landed.add(digests.index(digest))
    # Sanity: the sweep exercised every boundary, start through final state.
    assert landed == set(range(len(prefixes)))


# ----------------------------------------------------------------------
# real process death (SIGKILL)
# ----------------------------------------------------------------------

WRITER_SCRIPT = textwrap.dedent(
    """
    import sys

    from repro.schema.registry import Schema
    from repro.storage.durable import DurableStore
    from repro.temporal.clock import TransactionClock

    schema = Schema("crash-test")
    schema.define_node("Box", fields={"status": "string", "size": "integer"})
    schema.define_edge("Link", fields={"weight": "integer"})
    store = DurableStore.open(
        sys.argv[1], schema, clock=TransactionClock(start=1000.0)
    )
    batched = sys.argv[2] == "batched"
    print("ready", flush=True)
    i = 0
    while True:
        if batched:
            with store.bulk():
                base = store.insert_node("Box", {"status": f"s{i}"})
                store.insert_node("Box", {"status": f"s{i}"})
                store.insert_edge("Link", base, base + 1)
        else:
            store.insert_node("Box", {"status": f"s{i}"})
        store.clock.advance(1)
        i += 1
    """
)


def kill_writer_once_journal_grows(data_dir, mode: str, threshold: int) -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    proc = subprocess.Popen(
        [sys.executable, "-c", WRITER_SCRIPT, str(data_dir), mode],
        stdout=subprocess.PIPE, env=env,
    )
    try:
        assert proc.stdout.readline().strip() == b"ready"
        wal_path = os.path.join(data_dir, WAL_FILE)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if os.path.exists(wal_path) and os.path.getsize(wal_path) >= threshold:
                break
            time.sleep(0.001)
        else:
            pytest.fail("writer never reached the kill threshold")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on test failure
            proc.kill()
            proc.wait(timeout=10)


@pytest.mark.durability
@pytest.mark.parametrize("threshold", [150, 600, 2500])
def test_sigkill_mid_stream_recovers_a_prefix(tmp_path, threshold):
    """Journal left by a real SIGKILL recovers to an insert boundary."""
    data_dir = tmp_path / "data"
    kill_writer_once_journal_grows(data_dir, "plain", threshold)

    recovered = open_durable(data_dir)
    dump_report(recovered.recovery, f"sigkill-plain-{threshold}")
    uids = recovered.known_uids()
    assert uids == list(range(1, len(uids) + 1))  # a dense prefix, no holes
    from repro.storage.base import TimeScope

    for uid in uids:
        element = recovered.get_element(uid, TimeScope.current())
        assert element is not None and element.fields["status"] == f"s{uid - 1}"
    recovered.close()


@pytest.mark.durability
@pytest.mark.parametrize("threshold", [400, 1800])
def test_sigkill_mid_batch_preserves_batch_atomicity(tmp_path, threshold):
    """After SIGKILL, no partial batch is visible: 2 nodes + 1 edge per batch."""
    data_dir = tmp_path / "data"
    kill_writer_once_journal_grows(data_dir, "batched", threshold)

    recovered = open_durable(data_dir)
    dump_report(recovered.recovery, f"sigkill-batched-{threshold}")
    counts = recovered.counts()
    nodes, edges = counts["nodes"], counts["edges"]
    assert nodes % 2 == 0
    assert edges == nodes // 2
    recovered.close()
