"""Snapshot export/import: JSON round trips and backend migration."""


from repro.storage.base import TimeScope
from repro.storage.memgraph.store import MemGraphStore
from repro.storage.relational.store import RelationalStore
from repro.storage.snapshot import Snapshot, SnapshotLoader, export_snapshot
from repro.temporal.clock import TransactionClock
from tests.conftest import T0, SmallInventory

CURRENT = TimeScope.current()


def digest(store, scope=CURRENT):
    snap = export_snapshot(store, scope)
    return (
        sorted((n.uid, n.class_name, tuple(sorted(n.fields.items()))) for n in snap.nodes),
        sorted((e.uid, e.class_name, e.source, e.target) for e in snap.edges),
    )


def test_export_covers_everything(mem_store, small_inventory):
    snap = export_snapshot(mem_store)
    assert len(snap.nodes) == 11
    assert len(snap.edges) == 17
    assert small_inventory.vm1 in {n.uid for n in snap.nodes}


def test_json_round_trip(tmp_path, mem_store, small_inventory):
    snap = export_snapshot(mem_store)
    path = tmp_path / "dump.json"
    snap.save(path)
    reloaded = Snapshot.load(path)
    assert reloaded.to_dict() == snap.to_dict()
    # Structured fields survive serialization.
    mem_store.insert_node(
        "Router",
        {"name": "r", "routing_table": [{"address": "10.0.0.0", "mask": 8,
                                         "interface": "ge0"}]},
    )
    snap2 = export_snapshot(mem_store)
    snap2.save(path)
    assert Snapshot.load(path).to_dict() == snap2.to_dict()


def test_migrate_between_backends(network_schema, mem_store, small_inventory):
    target = RelationalStore(network_schema, clock=TransactionClock(start=T0))
    SnapshotLoader(target).apply(export_snapshot(mem_store))
    assert digest(target) == digest(mem_store)


def test_export_of_past_state_rolls_back(network_schema):
    clock = TransactionClock(start=T0)
    store = MemGraphStore(network_schema, clock=clock)
    inv = SmallInventory(store)
    past = digest(store)
    clock.advance(100)
    store.update_element(inv.vm1, {"status": "Red"})
    store.delete_element(inv.e_vm1_host1)
    assert digest(store) != past

    # Export the state as of T0+1 and load it into a fresh store.
    replica = MemGraphStore(network_schema, clock=TransactionClock(start=T0))
    SnapshotLoader(replica).apply(export_snapshot(store, TimeScope.at(T0 + 1)))
    assert digest(replica) == past


def test_failed_save_leaves_previous_snapshot_intact(tmp_path, mem_store, monkeypatch):
    """A death mid-write must not tear the file: save is temp+rename."""
    import json
    import os

    path = tmp_path / "dump.json"
    snap = export_snapshot(mem_store)
    snap.save(path)
    good = path.read_bytes()

    def exploding_dump(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr(json, "dump", exploding_dump)
    try:
        snap.save(path)
    except OSError:
        pass
    else:  # pragma: no cover
        raise AssertionError("save should have propagated the failure")
    assert path.read_bytes() == good  # previous snapshot untouched
    assert [f for f in os.listdir(tmp_path) if f.endswith(".tmp")] == []


def test_loader_applies_exported_diffs_incrementally(network_schema, clock):
    source = MemGraphStore(network_schema, clock=clock)
    inv = SmallInventory(source)
    replica = MemGraphStore(network_schema, clock=TransactionClock(start=T0))
    loader = SnapshotLoader(replica)
    loader.apply(export_snapshot(source))

    clock.advance(50)
    source.update_element(inv.vm1, {"status": "Red"})
    replica.clock.advance(50)
    stats = loader.apply(export_snapshot(source))
    assert stats.updated == 1
    assert stats.inserted_nodes == stats.inserted_edges == stats.deleted == 0
    assert digest(replica) == digest(source)
