"""Temporal secondary indexes: unit tests and the differential oracle.

The store keeps its own oracle: flipping ``temporal_index_enabled`` off
routes historical anchors through the pre-index brute-force scan over
every uid ever admitted, while the indexes keep being maintained.  Every
property here drives random churn into one store and asserts the indexed
and brute-force answers are identical — then rebuilds the indexes from
the version chains and asserts incremental maintenance drifted nowhere.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.rpe.parser import parse_rpe
from repro.stats.metrics import MetricsRegistry
from repro.storage.base import TimeScope
from repro.storage.memgraph.store import MemGraphStore
from repro.storage.memgraph.temporal_index import (
    TemporalClassIndex,
    VersionPostings,
)
from repro.temporal.clock import TransactionClock
from repro.temporal.interval import FOREVER
from tests.storage.test_backend_equivalence import SCHEMA, apply_ops

T0 = 1_000.0


# ----------------------------------------------------------------------
# VersionPostings unit behaviour
# ----------------------------------------------------------------------


def overlapping(postings: VersionPostings, start: float, end: float) -> set[int]:
    result: set[int] = set()
    postings.overlapping(start, end, result)
    return result


def test_postings_open_versions_overlap_any_later_window():
    postings = VersionPostings()
    postings.open_version(1, 10.0)
    assert overlapping(postings, 10.0, 10.1) == {1}
    assert overlapping(postings, 500.0, FOREVER) == {1}
    assert overlapping(postings, 0.0, 10.0) == set()  # half-open: ends before


def test_postings_closed_versions_use_bisect_tail():
    postings = VersionPostings()
    postings.open_version(1, 10.0)
    postings.close_version(1, 20.0)
    postings.open_version(2, 15.0)
    postings.close_version(2, 30.0)
    assert overlapping(postings, 0.0, 5.0) == set()
    assert overlapping(postings, 12.0, 13.0) == {1}
    assert overlapping(postings, 25.0, 26.0) == {2}
    assert overlapping(postings, 12.0, 16.0) == {1, 2}
    assert overlapping(postings, 30.0, 40.0) == set()  # [_, 30) excludes 30
    assert len(postings) == 2


def test_postings_drop_open_forgets_zero_duration_versions():
    postings = VersionPostings()
    postings.open_version(7, 10.0)
    postings.drop_open(7)
    assert overlapping(postings, 0.0, FOREVER) == set()
    postings.close_version(7, 20.0)  # no-op: nothing open
    assert len(postings) == 0


def test_postings_resort_guard_handles_out_of_order_closes():
    postings = VersionPostings()
    for uid, (start, end) in enumerate([(10.0, 50.0), (0.0, 20.0), (30.0, 40.0)]):
        postings.open_version(uid, start)
        postings.close_version(uid, end)  # ends arrive 50, 20, 40: unsorted
    assert overlapping(postings, 45.0, 46.0) == {0}
    assert overlapping(postings, 15.0, 35.0) == {0, 1, 2}
    assert overlapping(postings, 21.0, 29.0) == {0}


def test_class_index_lookup_unions_classes():
    index = TemporalClassIndex()
    index.open("Box", 1, 10.0)
    index.open("BigBox", 2, 10.0)
    index.close("Box", 1, 20.0)
    scope = TimeScope.at(15.0)
    assert index.lookup(["Box"], scope) == {1}
    assert index.lookup(["Box", "BigBox"], scope) == {1, 2}
    assert index.lookup(["Box"], TimeScope.at(25.0)) == set()
    assert index.count(["Box", "BigBox"], scope) == 2
    assert index.postings_count("Box") == 1


# ----------------------------------------------------------------------
# store-level differential: indexed vs brute-force under random churn
# ----------------------------------------------------------------------

_ops = st.lists(
    st.sampled_from([
        ("node", "Box"), ("node", "BigBox"),
        ("edge", "Link"), ("edge", "FastLink"),
        ("update",), ("delete",), ("revive",), ("tick",),
    ]),
    min_size=3,
    max_size=30,
)
_choices = st.lists(st.integers(min_value=0, max_value=997), min_size=70, max_size=70)

#: Scanned atoms: bare classes, a subclass, and equalities over the indexed
#: ``status`` field (hit by churn updates) plus an unindexed ``size``.
ATOM_TEXTS = (
    "Box()",
    "BigBox()",
    "Link()",
    "Box(status='up')",
    "Box(status='changed')",
    "Box(size=1)",
)


def churned_store(ops, choices) -> MemGraphStore:
    store = MemGraphStore(
        SCHEMA,
        clock=TransactionClock(start=T0),
        indexed_fields=("name", "status"),
    )
    apply_ops(store, ops, choices)
    return store


def scopes_for(store) -> list[TimeScope]:
    final = store.clock.now()
    mid = (T0 + final) / 2
    return [
        TimeScope.current(),
        TimeScope.at(T0),
        TimeScope.at(mid),
        TimeScope.at(final),
        TimeScope.between(T0, final + 1.0),
        TimeScope.between(mid, final + 5.0),
    ]


def digest(records) -> set[tuple]:
    return {
        (r.uid, r.cls.name, tuple(sorted(r.fields.items())), r.period.start)
        for r in records
    }


@settings(max_examples=40, deadline=None)
@given(_ops, _choices)
def test_indexed_scans_match_bruteforce_under_churn(ops, choices):
    store = churned_store(ops, choices)
    atoms = [parse_rpe(text).bind(SCHEMA) for text in ATOM_TEXTS]
    for scope in scopes_for(store):
        for atom in atoms:
            store.temporal_index_enabled = True
            indexed = digest(store.scan_atom(atom, scope))
            store.temporal_index_enabled = False
            brute = digest(store.scan_atom(atom, scope))
            assert indexed == brute, (atom.render(), str(scope))


@settings(max_examples=40, deadline=None)
@given(_ops, _choices)
def test_incremental_maintenance_matches_full_rebuild(ops, choices):
    store = churned_store(ops, choices)
    atoms = [parse_rpe(text).bind(SCHEMA) for text in ATOM_TEXTS]
    scopes = scopes_for(store)
    incremental = [
        digest(store.scan_atom(atom, scope)) for scope in scopes for atom in atoms
    ]
    counts = [store.temporal_posting_count(c) for c in ("Box", "BigBox", "Link")]
    store.rebuild_temporal_indexes()
    rebuilt = [
        digest(store.scan_atom(atom, scope)) for scope in scopes for atom in atoms
    ]
    assert incremental == rebuilt
    assert counts == [
        store.temporal_posting_count(c) for c in ("Box", "BigBox", "Link")
    ]


@settings(max_examples=30, deadline=None)
@given(_ops, _choices)
def test_batched_expansion_matches_per_node_calls(ops, choices):
    store = churned_store(ops, choices)
    uids = store.known_uids()
    link = SCHEMA.edge_class("Link")
    fast = SCHEMA.edge_class("FastLink")
    for scope in scopes_for(store):
        for classes in (None, [link], [fast], [link, fast]):
            batched = store.out_edges_many(uids, scope, classes)
            assert set(batched) == set(uids)
            for uid in uids:
                single = store.out_edges(uid, scope, classes)
                assert [e.uid for e in batched[uid]] == [e.uid for e in single]
            batched_in = store.in_edges_many(uids, scope, classes)
            for uid in uids:
                single = store.in_edges(uid, scope, classes)
                assert [e.uid for e in batched_in[uid]] == [e.uid for e in single]


@settings(max_examples=30, deadline=None)
@given(_ops, _choices)
def test_class_count_at_matches_scan_cardinality(ops, choices):
    store = churned_store(ops, choices)
    for scope in scopes_for(store):
        for class_name in ("Box", "BigBox", "Link"):
            atom = parse_rpe(f"{class_name}()").bind(SCHEMA)
            expected = len(store.scan_atom(atom, scope))
            assert store.class_count_at(class_name, scope) == expected
    store.temporal_index_enabled = False
    historic = TimeScope.at(T0)
    assert store.class_count_at("Box", historic) is None
    assert store.class_count_at("Box", TimeScope.current()) == store.class_count("Box")


# ----------------------------------------------------------------------
# deterministic behaviour details
# ----------------------------------------------------------------------


@pytest.fixture
def box_store() -> MemGraphStore:
    return MemGraphStore(
        SCHEMA, clock=TransactionClock(start=T0), indexed_fields=("name", "status")
    )


def test_historical_field_equality_served_by_temporal_index(box_store):
    store = box_store
    uid = store.insert_node("Box", {"status": "up", "size": 1})
    store.clock.advance(10)
    store.update_element(uid, {"status": "down"})
    store.clock.advance(10)
    atom_up = parse_rpe("Box(status='up')").bind(SCHEMA)
    atom_down = parse_rpe("Box(status='down')").bind(SCHEMA)
    was_up = TimeScope.at(T0 + 5)
    assert [r.uid for r in store.scan_atom(atom_up, was_up)] == [uid]
    assert store.scan_atom(atom_down, was_up) == []
    assert [r.uid for r in store.scan_atom(atom_down, TimeScope.current())] == [uid]
    # The representative version reflects the scope, not the present.
    (record,) = store.scan_atom(atom_up, was_up)
    assert record.fields["status"] == "up"


def test_zero_duration_versions_never_surface(box_store):
    store = box_store
    uid = store.insert_node("Box", {"status": "up"})
    store.update_element(uid, {"status": "flash"})  # same transaction instant
    store.update_element(uid, {"status": "settled"})
    atom = parse_rpe("Box(status='flash')").bind(SCHEMA)
    assert store.scan_atom(atom, TimeScope.at(T0)) == []
    assert store.scan_atom(atom, TimeScope.between(T0, T0 + 100)) == []
    dead = store.insert_node("Box", {"status": "blip"})
    store.delete_element(dead)  # opened and deleted at the same instant
    blip = parse_rpe("Box(status='blip')").bind(SCHEMA)
    assert store.scan_atom(blip, TimeScope.between(T0, FOREVER)) == []


def test_temporal_events_reach_the_metrics_registry(box_store):
    store = box_store
    metrics = MetricsRegistry()
    store.set_metrics(metrics)
    uid = store.insert_node("Box", {"name": "b-1", "status": "up"})
    store.clock.advance(10)
    store.update_element(uid, {"status": "down"})
    bare = parse_rpe("Box()").bind(SCHEMA)
    named = parse_rpe("Box(name='b-1')").bind(SCHEMA)
    store.scan_atom(bare, TimeScope.at(T0))
    store.scan_atom(named, TimeScope.at(T0))
    store.temporal_index_enabled = False
    store.scan_atom(bare, TimeScope.at(T0))
    events = metrics.events("index.temporal")
    assert events["index.temporal.class_hit"] == 1
    assert events["index.temporal.field_hit"] == 1
    assert events["index.temporal.scan"] == 1
    assert events["index.temporal.candidates"] >= 2
