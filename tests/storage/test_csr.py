"""Properties of the columnar (CSR) snapshot layer.

The snapshot is the foundation the batch operators stand on, so its
invariants are tested directly: the interning table is a bijection, the
chain columns are bisectable (starts and ends ascending per chain), the
adjacency CSR reproduces ``AdjacencyIndex.edges`` ordering exactly, and
the epoch cache rebuilds lazily — same object within an epoch, fresh and
equivalent to a from-scratch build after any write.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.storage.base import TimeScope
from repro.storage.memgraph.csr import build_csr
from repro.storage.memgraph.store import MemGraphStore
from repro.temporal.clock import TransactionClock
from tests.storage.test_backend_equivalence import SCHEMA, T0, _ops, apply_ops

_choices = st.lists(st.integers(min_value=0, max_value=997), min_size=60, max_size=60)


def churned_store(ops, choices) -> MemGraphStore:
    store = MemGraphStore(SCHEMA, clock=TransactionClock(start=T0))
    apply_ops(store, ops, choices)
    return store


def simple_store() -> MemGraphStore:
    store = MemGraphStore(SCHEMA, clock=TransactionClock(start=T0))
    a = store.insert_node("Box", {"status": "up"})
    b = store.insert_node("BigBox", {"status": "up"})
    c = store.insert_node("Box", {"status": "down"})
    store.insert_edge("Link", a, b, {"weight": 1})
    store.clock.advance(10)
    store.insert_edge("FastLink", a, c, {"weight": 2})
    store.insert_edge("Link", a, c, {"weight": 3})
    store.clock.advance(10)
    store.update_element(a, {"status": "warm"})
    store.delete_element(c)
    return store


def test_interning_table_is_a_bijection():
    store = simple_store()
    csr = build_csr(store)
    uids = list(csr.uids)
    assert uids == sorted(store._class_of)
    assert [csr.dense_of[uid] for uid in uids] == list(range(len(uids)))
    for dense, uid in enumerate(uids):
        name = csr.class_names[csr.element_class_ids[dense]]
        assert name == store._class_of[uid].name
    # Every schema class is interned, node and edge labels alike.
    assert {cls.name for cls in store.schema.classes()} <= set(csr.class_names)


def test_chain_columns_are_bisectable():
    store = simple_store()
    csr = build_csr(store)
    assert csr.chain_offsets[0] == 0
    assert csr.chain_offsets[-1] == len(csr.chain_records)
    for dense in range(len(csr.uids)):
        lo, hi = csr.chain_offsets[dense], csr.chain_offsets[dense + 1]
        starts = list(csr.chain_starts[lo:hi])
        ends = list(csr.chain_ends[lo:hi])
        assert starts == sorted(starts)
        assert ends == sorted(ends)
        # Versions of a chain never overlap: each closes before the next opens.
        for i in range(1, len(starts)):
            assert ends[i - 1] <= starts[i]


def test_adjacency_csr_reproduces_index_ordering():
    store = simple_store()
    csr = build_csr(store)
    filters = [None, ["Link"], ["FastLink"], ["Link", "FastLink"], ["FastLink", "Link"]]
    for adjacency, segments, flat in (
        (store._out, csr.out_segments, csr.out_edge_dense),
        (store._in, csr.in_segments, csr.in_edge_dense),
    ):
        for uid in store.known_uids():
            dense = csr.dense_of[uid]
            for names in filters:
                expected = adjacency.edges(uid, names)
                segs = segments[dense] or {}
                ranges = (
                    list(segs.values())
                    if names is None
                    else [segs[n] for n in names if n in segs]
                )
                got = [
                    csr.uids[flat[i]] for lo, hi in ranges for i in range(lo, hi)
                ]
                assert got == expected, (uid, names)


def test_epoch_cache_reuses_then_invalidates():
    store = simple_store()
    # First batch read of an epoch defers to the row path (no snapshot yet);
    # the second builds, and later reads reuse the same object.
    assert store._csr_snapshot() is None
    built = store._csr_snapshot()
    assert built is not None
    assert store._csr_snapshot() is built
    assert built.data_version == store.data_version
    # Any write moves the epoch: one deferred read, then a fresh build.
    store.insert_node("Box", {"status": "new"})
    assert store._csr_snapshot() is None
    rebuilt = store._csr_snapshot()
    assert rebuilt is not built
    assert rebuilt.data_version == store.data_version


@settings(max_examples=30, deadline=None)
@given(_ops, _choices)
def test_lazy_rebuild_equals_fresh_build(ops, choices):
    """After arbitrary churn, the epoch-cached snapshot answers exactly like
    a from-scratch build (and like the row path) at every probe time."""
    store = churned_store(ops, choices)
    store._csr_snapshot()  # mark the epoch seen
    cached = store._csr_snapshot()
    assert cached is not None
    fresh = build_csr(store)
    assert cached.describe() == fresh.describe()
    final = store.clock.now()
    probes = [T0, (T0 + final) / 2, final]
    for uid in store.known_uids():
        for t in probes:
            scope = TimeScope.at(t)
            window = scope.window()
            a, b = window.start, window.end
            assert cached.latest_visible(uid, a, b) == fresh.latest_visible(uid, a, b)
            assert cached.latest_visible(uid, a, b) == store.get_element(uid, scope)
