"""TimeScope visibility semantics."""

import pytest

from repro.errors import TemporalError
from repro.storage.base import TimeScope
from repro.temporal.interval import FOREVER, Interval


def test_current_admits_only_open_periods():
    scope = TimeScope.current()
    assert scope.admits(Interval(0, FOREVER))
    assert not scope.admits(Interval(0, 10))
    assert scope.is_current and not scope.is_range


def test_at_admits_containing_periods():
    scope = TimeScope.at(5.0)
    assert scope.admits(Interval(0, 10))
    assert scope.admits(Interval(5, 10))  # inclusive start
    assert not scope.admits(Interval(0, 5))  # exclusive end
    assert scope.admits(Interval(0, FOREVER))


def test_range_admits_overlaps():
    scope = TimeScope.between(10, 20)
    assert scope.admits(Interval(0, 11))
    assert scope.admits(Interval(19, 30))
    assert scope.admits(Interval(12, 15))
    assert not scope.admits(Interval(0, 10))  # touches only
    assert not scope.admits(Interval(20, 30))
    assert scope.is_range


def test_empty_range_rejected():
    with pytest.raises(TemporalError):
        TimeScope.between(10, 10)
    with pytest.raises(TemporalError):
        TimeScope.between(20, 10)


def test_window_shapes():
    assert TimeScope.current().window().contains(-1e18)
    at = TimeScope.at(5.0).window()
    assert at.contains(5.0) and at.duration() > 0
    rng = TimeScope.between(1, 2).window()
    assert (rng.start, rng.end) == (1, 2)


def test_str_forms():
    assert str(TimeScope.current()) == "current"
    assert "at 5" in str(TimeScope.at(5.0))
    assert "range" in str(TimeScope.between(1, 2))
