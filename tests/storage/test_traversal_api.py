"""The Gremlin-flavoured traversal API over the in-memory store."""

from repro.storage.base import TimeScope
from repro.storage.memgraph.traversal import g
from tests.conftest import T0


def test_v_and_haslabel(mem_store, small_inventory):
    assert g(mem_store).V().count() == 11
    # hasLabel matches by class subtree — the label-prefix trick.
    assert g(mem_store).V().hasLabel("VM").count() == 2
    assert g(mem_store).V().hasLabel("Container").count() == 2
    assert g(mem_store).V().hasLabel("PhysicalElement").count() == 4


def test_v_by_uid(mem_store, small_inventory):
    inv = small_inventory
    records = g(mem_store).V(inv.vm1, inv.host1).to_list()
    assert [r.uid for r in records] == [inv.vm1, inv.host1]


def test_has_filter_and_values(mem_store, small_inventory):
    names = g(mem_store).V().hasLabel("VM").has("status", "Green").values("name")
    assert sorted(names) == ["vm-1", "vm-2"]


def test_out_steps(mem_store, small_inventory):
    inv = small_inventory
    hosts = g(mem_store).V(inv.vm1).out("OnServer").values("name")
    assert hosts == ["host-1"]
    # Two-step: VFC -> VM -> Host.
    hosts = g(mem_store).V(inv.vfc1).out("OnVM").out("OnServer").values("name")
    assert hosts == ["host-1"]


def test_in_steps(mem_store, small_inventory):
    inv = small_inventory
    vfcs = g(mem_store).V(inv.vm1).in_("OnVM").values("name")
    assert vfcs == ["vfc-1"]


def test_edge_steps(mem_store, small_inventory):
    inv = small_inventory
    edges = g(mem_store).V(inv.vm1).outE("OnServer").to_list()
    assert [e.uid for e in edges] == [inv.e_vm1_host1]
    nodes = g(mem_store).V(inv.vm1).outE("OnServer").inV().values("name")
    assert nodes == ["host-1"]


def test_dedup_and_limit(mem_store, small_inventory):
    inv = small_inventory
    # vm1 and vm2 both sit on net1.
    vms = (
        g(mem_store)
        .V(inv.net1)
        .out("VmNetwork")
        .dedup()
        .to_list()
    )
    assert {r.uid for r in vms} == {inv.vm1, inv.vm2}
    assert g(mem_store).V().limit(3).count() == 3


def test_filter_with_callable(mem_store, small_inventory):
    big = (
        g(mem_store)
        .V()
        .hasLabel("Host")
        .filter(lambda r: (r.get("cpu_cores") or 0) > 32)
        .values("name")
    )
    assert big == ["host-1"]


def test_time_scoped_traversal(mem_store, small_inventory, clock):
    inv = small_inventory
    clock.advance(100)
    mem_store.delete_element(inv.e_vm1_host1)
    now = g(mem_store).V(inv.vm1).out("OnServer").count()
    assert now == 0
    past = g(mem_store, TimeScope.at(T0 + 50)).V(inv.vm1).out("OnServer").count()
    assert past == 1


def test_traversal_matches_nepal_query(mem_store, small_inventory):
    """The traversal API and the compiled RPE agree — the §6.1 claim that
    the class system 'streamlines query development' without changing
    results."""
    from repro.plan.planner import Planner
    from repro.stats.cardinality import CardinalityEstimator

    by_hand = {
        record.uid
        for record in g(mem_store).V().hasLabel("VFC").out("OnVM").out("OnServer").to_list()
    }
    planner = Planner(mem_store.schema, CardinalityEstimator(mem_store))
    program = planner.compile("VFC()->OnVM()->VM()->OnServer()->Host()")
    by_nepal = {
        p.target.uid for p in mem_store.find_pathways(program, TimeScope.current())
    }
    assert by_hand == by_nepal
