"""SQL generation details (§5.2 idioms)."""

import pytest

from repro.plan.operators import ExtendOp
from repro.rpe.parser import parse_rpe
from repro.schema.builtin import build_network_schema
from repro.storage.base import TimeScope
from repro.storage.relational import ddl, sqlgen
from repro.storage.relational.sqlgen import PathSql, atom_conditions
from repro.storage.relational.temporal import scope_predicate

SCHEMA = build_network_schema()


def atom(text):
    return parse_rpe(text).bind(SCHEMA)


@pytest.fixture
def forward():
    return PathSql(SCHEMA, TimeScope.current(), sqlgen.FORWARD, "t")


@pytest.fixture
def backward():
    return PathSql(SCHEMA, TimeScope.current(), sqlgen.BACKWARD, "t")


class TestTemporalPredicates:
    def test_current(self):
        sql, params = scope_predicate("H", TimeScope.current())
        assert sql == "H.sys_end = 9e999"
        assert params == []

    def test_at_containment(self):
        sql, params = scope_predicate("H", TimeScope.at(5.0))
        assert "sys_start <= ?" in sql and "< H.sys_end" in sql
        assert params == [5.0, 5.0]

    def test_range_overlap(self):
        sql, params = scope_predicate("H", TimeScope.between(1.0, 2.0))
        assert "sys_start < ?" in sql and "sys_end > ?" in sql
        assert params == [2.0, 1.0]


class TestAtomConditions:
    def test_primitive_predicates_pushed(self):
        conditions, params, post = atom_conditions(
            atom("VM(status='Green', vcpus>=4)"), "A", TimeScope.current()
        )
        text = " AND ".join(conditions)
        assert "A.f_status = ?" in text
        assert "A.f_vcpus >= ?" in text
        assert params[-2:] == ["Green", 4]
        assert not post

    def test_id_predicate_uses_id_column(self):
        conditions, params, _ = atom_conditions(
            atom("VM(id=55)"), "A", TimeScope.current()
        )
        assert any("A.id_ = ?" in c for c in conditions)
        assert 55 in params

    def test_structured_predicates_post_filtered(self):
        _, _, post = atom_conditions(
            atom("Router(routing_table.mask>=8)"), "A", TimeScope.current()
        )
        assert post

    def test_json_field_post_filtered(self):
        _, _, post = atom_conditions(
            atom("VNF(descriptor.vendor='acme')"), "A", TimeScope.current()
        )
        assert post


class TestStatements:
    def test_anchor_select_shape(self, forward):
        statement = forward.anchor_select("tmp_t_s0", atom("VM(id=5)"))
        assert "INSERT OR IGNORE INTO tmp_t_s0" in statement.sql
        assert "FROM v_VM A" in statement.sql
        assert "'node'" in statement.sql

    def test_edge_anchor_frontier_direction(self, forward, backward):
        fwd = forward.anchor_select("tmp_t_s0", atom("OnServer(id=9)"))
        assert "A.target_id_" in fwd.sql
        back = backward.anchor_select("tmp_t_s0", atom("OnServer(id=9)"))
        assert "A.source_id_" in back.sql

    def test_extend_edge_has_cycle_check(self, forward):
        op = ExtendOp(0, 1, "edge", atom("OnServer()"))
        statements = forward.extend(op, "tmp_t_s0", "tmp_t_s1")
        assert len(statements) == 1
        sql = statements[0].sql
        assert "instr(',' || T.uid_list || ','" in sql
        assert "H.source_id_ = T.frontier" in sql
        assert "T.last_kind = 'node'" in sql

    def test_extend_backward_swaps_endpoints(self, backward):
        op = ExtendOp(0, 1, "edge", atom("OnServer()"))
        sql = backward.extend(op, "a", "b")[0].sql
        assert "H.target_id_ = T.frontier" in sql
        assert "H.source_id_, 'edge'" in sql

    def test_wildcard_any_emits_both_variants(self, forward):
        op = ExtendOp(0, 1, "any", None)
        statements = forward.extend(op, "a", "b")
        assert len(statements) == 2
        assert any("v_Edge" in s.sql for s in statements)
        assert any("v_Node" in s.sql for s in statements)

    def test_union_copies_rows(self, forward):
        statement = forward.union("a", "b")
        assert statement.sql.startswith("INSERT OR IGNORE INTO b")

    def test_fusable_rules(self):
        edge_op = ExtendOp(0, 1, "edge", atom("OnServer()"))
        node_op = ExtendOp(1, 2, "node", atom("VM()"))
        wildcard_node = ExtendOp(1, 2, "node", None)
        any_op = ExtendOp(1, 2, "any", None)
        assert PathSql.fusable((edge_op, node_op))
        assert PathSql.fusable((edge_op, wildcard_node))
        assert not PathSql.fusable((edge_op, ExtendOp(1, 2, "edge", atom("OnVM()"))))
        assert not PathSql.fusable((edge_op, any_op))

    def test_extend_block_multi_join(self, forward):
        steps = (
            ExtendOp(0, 1, "edge", atom("OnServer()")),
            ExtendOp(1, 2, "node", atom("Host()")),
        )
        statement = forward.extend_block(steps, "a", "b")
        assert statement.sql.count("JOIN") == 2
        assert "X0" in statement.sql and "X1" in statement.sql
        assert "X1.id_ <> X0.id_" in statement.sql


class TestDdlHelpers:
    def test_table_and_view_names(self):
        host = SCHEMA.resolve("Host")
        assert ddl.current_table(host) == "c_Host"
        assert ddl.history_table(host) == "h_Host"
        assert ddl.current_view(host) == "v_Host"
        assert ddl.historical_view(host) == "vh_Host"

    def test_edge_base_columns(self):
        on_server = SCHEMA.resolve("OnServer")
        assert "source_id_" in ddl.base_columns(on_server)
        assert "source_id_" not in ddl.base_columns(SCHEMA.resolve("Host"))

    def test_create_statements_cover_all_concrete_classes(self):
        statements = "\n".join(ddl.create_statements(SCHEMA))
        for cls in SCHEMA.node_root.concrete_subtree():
            assert f"CREATE TABLE c_{cls.name} " in statements
        # Abstract classes only get views.
        assert "CREATE TABLE c_VNF " not in statements
        assert "CREATE VIEW v_VNF " in statements
