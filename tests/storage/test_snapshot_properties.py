"""Property tests for the update-by-snapshot service.

Under arbitrary write histories, ``export_snapshot`` → ``SnapshotLoader.
apply`` must be (a) idempotent — re-applying a store's own export changes
nothing — and (b) state-transferring — applying one store's export to a
fresh store reproduces the current graph exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.storage.base import TimeScope
from repro.storage.memgraph.store import MemGraphStore
from repro.storage.snapshot import SnapshotLoader, export_snapshot
from repro.temporal.clock import TransactionClock
from tests.storage.test_backend_equivalence import (
    SCHEMA,
    T0,
    apply_ops,
    snapshot_of,
)

def graph_state(store):
    """The current graph, without validity timestamps: a snapshot carries
    state but not the source's history, so transferred stores agree on
    content while version chains legitimately start at different times."""
    from repro.rpe.parser import parse_rpe

    scope = TimeScope.current()
    box = parse_rpe("Box()").bind(store.schema)
    link = parse_rpe("Link()").bind(store.schema)
    nodes = {
        (r.uid, r.cls.name, tuple(sorted(r.fields.items())))
        for r in store.scan_atom(box, scope)
    }
    edges = {
        (r.uid, r.cls.name, r.source_uid, r.target_uid,
         tuple(sorted(r.fields.items())))
        for r in store.scan_atom(link, scope)
    }
    return nodes, edges


_ops = st.lists(
    st.sampled_from([
        ("node", "Box"), ("node", "BigBox"),
        ("edge", "Link"), ("edge", "FastLink"),
        ("update",), ("delete",), ("revive",), ("tick",),
    ]),
    min_size=3,
    max_size=25,
)
_choices = st.lists(st.integers(min_value=0, max_value=997), min_size=60, max_size=60)


def random_store(ops, choices) -> MemGraphStore:
    store = MemGraphStore(SCHEMA, clock=TransactionClock(start=T0))
    apply_ops(store, ops, choices)
    return store


@settings(max_examples=40, deadline=None)
@given(_ops, _choices)
def test_reapplying_own_export_is_a_no_op(ops, choices):
    store = random_store(ops, choices)
    before = snapshot_of(store, TimeScope.current())
    version = store.data_version
    stats = SnapshotLoader(store).apply(export_snapshot(store))
    assert stats.total_changes() == 0
    assert snapshot_of(store, TimeScope.current()) == before
    # A zero-change application still runs inside bulk(); what matters for
    # the plan cache is only that the data_version never moves backwards.
    assert store.data_version >= version


@settings(max_examples=40, deadline=None)
@given(_ops, _choices)
def test_export_apply_transfers_current_state(ops, choices):
    source = random_store(ops, choices)
    target = MemGraphStore(SCHEMA, clock=TransactionClock(start=T0))
    snapshot = export_snapshot(source)
    SnapshotLoader(target).apply(snapshot)
    assert graph_state(target) == graph_state(source)
    # And the transfer is stable: a second application changes nothing.
    assert SnapshotLoader(target).apply(snapshot).total_changes() == 0
