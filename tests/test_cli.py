"""The nepal CLI: batch commands and shell statements."""

import pytest

from repro.cli import build_database, main, run_statement
from repro.core.database import NepalDB
from repro.temporal.clock import TransactionClock


@pytest.fixture
def db():
    database = NepalDB(clock=TransactionClock(start=100.0))
    host = database.insert_node("Host", {"name": "h1"})
    vm = database.insert_node("VM", {"name": "v1"})
    database.insert_edge("OnServer", vm, host)
    return database


def test_query_statement(db):
    output = run_statement(
        db, "Select source(P).name From PATHS P Where P MATCHES VM()"
    )
    assert "v1" in output
    assert "(1 rows)" in output


def test_no_results(db):
    output = run_statement(db, "Retrieve P From PATHS P Where P MATCHES Router()")
    assert output == "(no results)"


def test_paths_dot_command(db):
    output = run_statement(db, ".paths VM()->OnServer()->Host()")
    assert "-OnServer->" in output
    assert "(1 pathways)" in output


def test_explain_dot_command(db):
    output = run_statement(db, ".explain Retrieve P From PATHS P Where P MATCHES VM()")
    assert "Select[" in output


def test_schema_and_stats(db):
    assert "VMWare" in run_statement(db, ".schema")
    assert "nodes" in run_statement(db, ".stats")
    assert "NPQL" in run_statement(db, ".help") or "query" in run_statement(db, ".help")


def test_quit_raises_eof(db):
    with pytest.raises(EOFError):
        run_statement(db, ".quit")


def test_temporal_output(db):
    db.clock.advance(50)
    db.delete(3)  # the OnServer edge
    output = run_statement(
        db, "AT 0 : 1000 Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()"
    )
    assert "validity ranges" in output


def test_main_with_commands(capsys):
    status = main([
        "--epoch", "100",
        "-c", "Retrieve P From PATHS P Where P MATCHES Host()",
    ])
    assert status == 0
    assert "(no results)" in capsys.readouterr().out


def test_main_reports_query_errors(capsys):
    status = main(["--epoch", "100", "-c", "Retrieve From Nowhere"])
    assert status == 1
    assert "error:" in capsys.readouterr().err


def test_demo_flag_loads_topology(capsys):
    status = main([
        "--demo", "--epoch", "100",
        "-c", "Select source(P).name From PATHS P Where P MATCHES Service()",
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert "service-0" in out


def test_build_database_with_tosca_schema(tmp_path):
    import argparse

    import yaml

    schema_file = tmp_path / "schema.yaml"
    schema_file.write_text(
        yaml.safe_dump(
            {
                "schema": "cli-test",
                "node_types": {"Thing": {"properties": {"status": "string"}}},
                "relationship_types": {"Link": {}},
            }
        )
    )
    args = argparse.Namespace(
        schema=str(schema_file), backend="memory", demo=False, epoch=50.0,
        snapshot=None,
    )
    db = build_database(args)
    assert "Thing" in db.schema
    assert db.clock.now() == 50.0


def test_chaos_flags_enable_injection_and_retries(capsys):
    status = main([
        "--demo", "--epoch", "100",
        "--chaos-seed", "3", "--chaos-error-rate", "0.3",
        "--retry-attempts", "8",
        "-c", "Select source(P).name From PATHS P Where P MATCHES Service()",
        "-c", ".stats",
    ])
    assert status == 0
    captured = capsys.readouterr()
    assert "chaos enabled on default store (seed=3" in captured.err
    # Despite the 30% fault rate the query answers correctly...
    assert "service-0" in captured.out
    # ...and .stats surfaces the resilience events that made it possible.
    assert "resilience.retry.default" in captured.out


def test_data_dir_survives_across_invocations(tmp_path, capsys):
    data_dir = str(tmp_path / "inventory")
    status = main([
        "--epoch", "100", "--data-dir", data_dir,
        "-c", ".stats",
    ])
    assert status == 0
    captured = capsys.readouterr()
    assert f"opened fresh durable store at {data_dir}" in captured.err

    # Writes journaled in one process are visible to the next.
    import os

    from repro.storage.durable import WAL_FILE
    from repro.temporal.clock import TransactionClock as Clock

    db = NepalDB(clock=Clock(start=100.0), data_dir=data_dir)
    db.insert_node("Host", {"name": "persisted-host"})
    db.close()
    assert os.path.getsize(os.path.join(data_dir, WAL_FILE)) > 0

    status = main([
        "--epoch", "100", "--data-dir", data_dir,
        "-c", "Select source(P).name From PATHS P Where P MATCHES Host()",
    ])
    assert status == 0
    captured = capsys.readouterr()
    assert f"recovered {data_dir}:" in captured.err
    assert "replayed 1/1 journal records" in captured.err
    assert "persisted-host" in captured.out


def test_checkpoint_dot_command(tmp_path, capsys):
    data_dir = str(tmp_path / "inventory")
    status = main([
        "--demo", "--epoch", "100", "--data-dir", data_dir,
        "-c", ".checkpoint",
    ])
    assert status == 0
    captured = capsys.readouterr()
    assert "checkpoint written:" in captured.out
    assert "WAL bytes truncated" in captured.out

    # The next startup loads the baseline instead of replaying the journal.
    status = main([
        "--epoch", "100", "--data-dir", data_dir,
        "-c", "Select source(P).name From PATHS P Where P MATCHES Service()",
    ])
    assert status == 0
    captured = capsys.readouterr()
    assert "checkpoint=yes" in captured.err
    assert "service-0" in captured.out


def test_checkpoint_without_data_dir_is_an_error(db):
    from repro.errors import NepalError

    with pytest.raises(NepalError, match="data_dir"):
        run_statement(db, ".checkpoint")


def test_render_result_prints_warnings():
    from repro.cli import render_result
    from repro.query.results import QueryResult

    result = QueryResult(("a",), [], warnings=("variable 'Q' dropped: down",))
    rendered = render_result(result)
    assert rendered.startswith("warning: variable 'Q' dropped: down")
    assert "(no results)" in rendered


def test_explain_analyze_dot_command(db):
    output = run_statement(
        db, ".explain --analyze Retrieve P From PATHS P Where P MATCHES VM()"
    )
    assert output.startswith("EXPLAIN ANALYZE")
    assert "actual: 1 pathways" in output
    assert "result: 1 rows" in output


def test_explain_subcommand(capsys):
    status = main([
        "explain", "--demo",
        "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()",
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert "Select[" in out
    assert "EXPLAIN ANALYZE" not in out


def test_explain_subcommand_analyze(capsys):
    status = main([
        "explain", "--demo", "--analyze",
        "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()",
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert out.startswith("EXPLAIN ANALYZE")
    assert "plan: cache miss" in out
    assert "pathways (estimated" in out


def test_explain_subcommand_analyze_trace(capsys):
    status = main([
        "explain", "--demo", "--analyze", "--trace",
        "Select source(P).name From PATHS P Where P MATCHES VM()",
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert "trace " in out  # the raw span tree follows the report
    assert "anchor_scan" in out


def test_explain_subcommand_reports_parse_errors(capsys):
    status = main(["explain", "--demo", "this is not NPQL"])
    assert status == 1
    assert "error:" in capsys.readouterr().err


def test_explain_prefix_through_shell(db):
    output = run_statement(
        db, "EXPLAIN ANALYZE Retrieve P From PATHS P Where P MATCHES VM()"
    )
    assert "EXPLAIN ANALYZE" in output
    assert "(" in output and "rows)" in output  # rendered as a result table
