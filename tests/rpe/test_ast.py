"""Atom binding, predicate evaluation and strongly-typed concepts."""

import pytest

from repro.errors import TypeCheckError
from repro.rpe.ast import Atom, FieldPredicate
from repro.rpe.parser import parse_rpe
from tests.rpe.util import pathway, rpe


class TestBinding:
    def test_bind_resolves_class(self):
        atom = rpe("VM(status='Green')")
        assert atom.bound
        assert atom.cls.name == "VM"
        assert atom.is_node_atom and not atom.is_edge_atom

    def test_bind_edge_atom(self):
        atom = rpe("HostedOn()")
        assert atom.is_edge_atom

    def test_unknown_class_rejected(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            rpe("Quantum()")

    def test_unknown_field_rejected(self):
        # Atoms are strongly typed: "only the VM fields can be referenced".
        with pytest.raises(TypeCheckError, match="unknown field"):
            rpe("Container(vcpus=4)")

    def test_id_always_allowed(self):
        atom = rpe("VM(id=55)")
        assert atom.equality_value("id") == 55

    def test_unbound_atom_refuses_matching(self):
        atom = parse_rpe("VM()")
        with pytest.raises(TypeCheckError):
            atom.is_node_atom
        with pytest.raises(TypeCheckError):
            atom.matches(pathway("VMWare:1").source)


class TestMatching:
    def test_subclass_generalization(self):
        # "The atom VM(...) refers to both VMWare nodes and OnMetal nodes".
        vm_atom = rpe("VM()")
        assert vm_atom.matches(pathway("VMWare:1").source)
        assert vm_atom.matches(pathway("OnMetal:1").source)
        # "...and does not refer to any Docker container."
        assert not vm_atom.matches(pathway("Docker:1").source)

    def test_kind_mismatch(self):
        p = pathway("VMWare:1 OnServer:2 Host:3")
        assert not rpe("VM()").matches(p.edges[0])
        assert not rpe("OnServer()").matches(p.nodes[0])

    def test_predicate_on_fields(self):
        p = pathway("VMWare:1", f1={"status": "Green", "vcpus": 4})
        assert rpe("VM(status='Green')").matches(p.source)
        assert not rpe("VM(status='Red')").matches(p.source)
        assert rpe("VM(vcpus>2)").matches(p.source)
        assert not rpe("VM(vcpus>8)").matches(p.source)

    def test_absent_field_never_matches(self):
        p = pathway("VMWare:1")
        assert not rpe("VM(status='Green')").matches(p.source)
        assert not rpe("VM(status!='Green')").matches(p.source)

    def test_id_predicate_uses_uid(self):
        p = pathway("VMWare:7")
        assert rpe("VM(id=7)").matches(p.source)
        assert not rpe("VM(id=8)").matches(p.source)

    def test_type_mismatch_comparison_is_false(self):
        p = pathway("VMWare:1", f1={"vcpus": 4})
        assert not rpe("VM(vcpus>'many')").matches(p.source)


class TestPredicates:
    def test_unsupported_operator_rejected(self):
        with pytest.raises(TypeCheckError):
            FieldPredicate("x", "~", 1)

    def test_render(self):
        assert FieldPredicate("status", "=", "Green").render() == "status='Green'"
        assert FieldPredicate("vcpus", ">=", 4).render() == "vcpus>=4"


class TestAtomIteration:
    def test_atoms_left_to_right(self):
        expr = rpe("VNF()->(VM()|Docker())->[HostedOn()]{1,2}->Host()")
        assert [a.class_name for a in expr.atoms()] == [
            "VNF", "VM", "Docker", "HostedOn", "Host",
        ]
