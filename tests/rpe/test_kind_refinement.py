"""The kind/consumer state refinement preserves the accepted language."""

from hypothesis import given, settings, strategies as st

from repro.model.elements import EdgeRecord, NodeRecord
from repro.model.pathway import Pathway
from repro.rpe.nfa import build_nfa
from repro.temporal.interval import FOREVER, Interval
from tests.rpe.test_oracle import SCHEMA, rpes

NODE_CLASSES = ("A1", "A2", "B")
EDGE_CLASSES = ("E", "F", "F1")
STATUSES = ("g", "b")


@st.composite
def pathways(draw):
    """A random well-formed pathway over the oracle schema."""
    hops = draw(st.integers(min_value=0, max_value=3))
    elements = []
    uid = 1
    period = Interval(0.0, FOREVER)

    def node():
        nonlocal uid
        cls = SCHEMA.resolve(draw(st.sampled_from(NODE_CLASSES)))
        record = NodeRecord(
            uid=uid, cls=cls,
            fields={"status": draw(st.sampled_from(STATUSES))}, period=period,
        )
        uid += 1
        return record

    elements.append(node())
    for _ in range(hops):
        cls = SCHEMA.resolve(draw(st.sampled_from(EDGE_CLASSES)))
        edge = EdgeRecord(
            uid=uid, cls=cls, fields={}, period=period,
            source_uid=elements[-1].uid, target_uid=uid + 1,
        )
        uid += 1
        elements.append(edge)
        elements.append(node())
    return Pathway(elements)


def accepts(nfa, pathway) -> bool:
    states = nfa.initial_states()
    for element in pathway.elements:
        states = nfa.step(states, element)
        if not states:
            return False
    return nfa.is_accepting(states)


@settings(max_examples=200, deadline=None)
@given(rpes(), pathways())
def test_refinement_preserves_acceptance(raw_rpe, pathway):
    bound = raw_rpe.bind(SCHEMA)
    raw_nfa = build_nfa(bound, leading="pad", trailing="pad")
    refined = raw_nfa.kind_refined(start_consumer="none")
    # The refined automaton never accepts anything new; it may reject
    # sequences the raw automaton spuriously accepted through dead glue/pad
    # combinations (that is the point), but on *well-formed pathways* the
    # raw automaton's additional acceptances are exactly those spurious
    # ones, so the refined result must equal the reference matcher used in
    # the oracle test.  Here we assert refinement is a subset of raw.
    if accepts(refined, pathway):
        assert accepts(raw_nfa, pathway)


@settings(max_examples=100, deadline=None)
@given(rpes())
def test_refinement_is_never_larger(raw_rpe):
    bound = raw_rpe.bind(SCHEMA)
    raw_nfa = build_nfa(bound, leading="pad", trailing="pad")
    refined = raw_nfa.kind_refined(start_consumer="none")
    # Structural sanity: acyclic and start/accept well-defined.
    order = refined.topological_states()
    position = {state: index for index, state in enumerate(order)}
    for source, arcs in refined.transitions.items():
        for _, target in arcs:
            assert position[source] < position[target]
