"""Property test: the anchored traversal engine agrees with brute force.

The reference semantics is: enumerate *every* simple pathway of the graph
and keep those accepted by the whole-pathway matcher (the direct encoding
of §3.3).  The engine under test is the planner + anchor-split traversal.
They must return exactly the same pathway sets on arbitrary graphs and
arbitrary anchored RPEs — this exercises anchor selection, forward and
backward extension, alternation unions, glue specialization and padding in
every combination.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UnanchoredQueryError
from repro.model.pathway import Pathway
from repro.plan.planner import Planner
from repro.rpe.ast import Alternation, Atom, FieldPredicate, Repetition, RpeNode, Sequence
from repro.rpe.match import compile_matcher, matches_pathway
from repro.rpe.normalize import length_bounds
from repro.schema.registry import Schema
from repro.storage.base import TimeScope
from repro.storage.memgraph.store import MemGraphStore
from repro.temporal.clock import TransactionClock


def build_oracle_schema() -> Schema:
    schema = Schema("oracle")
    schema.define_node("X", abstract=True, fields={"status": "string"})
    schema.define_node("A", parent="X")
    schema.define_node("A1", parent="A")
    schema.define_node("A2", parent="A")
    schema.define_node("B", parent="X")
    schema.define_edge("E")
    schema.define_edge("F")
    schema.define_edge("F1", parent="F")
    return schema


SCHEMA = build_oracle_schema()
NODE_CLASSES = ("A1", "A2", "B")
EDGE_CLASSES = ("E", "F", "F1")
ATOM_CLASSES = ("A", "A1", "A2", "B", "X", "E", "F", "F1")
STATUSES = ("g", "b")


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------


@st.composite
def graphs(draw):
    node_count = draw(st.integers(min_value=2, max_value=5))
    node_specs = [
        (draw(st.sampled_from(NODE_CLASSES)), draw(st.sampled_from(STATUSES)))
        for _ in range(node_count)
    ]
    edge_count = draw(st.integers(min_value=0, max_value=7))
    edge_specs = [
        (
            draw(st.sampled_from(EDGE_CLASSES)),
            draw(st.integers(min_value=0, max_value=node_count - 1)),
            draw(st.integers(min_value=0, max_value=node_count - 1)),
        )
        for _ in range(edge_count)
    ]
    return node_specs, edge_specs


@st.composite
def rpes(draw, depth: int = 2) -> RpeNode:
    if depth == 0:
        choice = "atom"
    else:
        choice = draw(st.sampled_from(["atom", "atom", "seq", "alt", "rep"]))
    if choice == "atom":
        class_name = draw(st.sampled_from(ATOM_CLASSES))
        predicates = ()
        if class_name in ("A", "A1", "A2", "B", "X") and draw(st.booleans()):
            predicates = (
                FieldPredicate("status", "=", draw(st.sampled_from(STATUSES))),
            )
        return Atom(class_name, predicates)
    if choice == "seq":
        parts = tuple(
            draw(rpes(depth=depth - 1))
            for _ in range(draw(st.integers(min_value=2, max_value=3)))
        )
        return Sequence(parts)
    if choice == "alt":
        alternatives = tuple(
            draw(rpes(depth=depth - 1)) for _ in range(2)
        )
        return Alternation(alternatives)
    low = draw(st.integers(min_value=0, max_value=2))
    high = draw(st.integers(min_value=max(low, 1), max_value=3))
    return Repetition(draw(rpes(depth=depth - 1)), low, high)


def load_graph(spec) -> MemGraphStore:
    node_specs, edge_specs = spec
    store = MemGraphStore(SCHEMA, clock=TransactionClock(start=10.0))
    uids = [
        store.insert_node(class_name, {"status": status})
        for class_name, status in node_specs
    ]
    for class_name, source, target in edge_specs:
        store.insert_edge(class_name, uids[source], uids[target])
    return store


def all_simple_pathways(store: MemGraphStore, max_elements: int):
    """Brute-force enumeration of every simple pathway up to a length."""
    scope = TimeScope.current()
    results = []

    def extend(elements, used):
        results.append(list(elements))
        if len(elements) >= max_elements:
            return
        last = elements[-1]
        for edge in store.out_edges(last.uid, scope):
            if edge.uid in used:
                continue
            target = store.get_element(edge.target_uid, scope)
            if target is None or target.uid in used:
                continue
            elements.extend([edge, target])
            used |= {edge.uid, target.uid}
            extend(elements, used)
            used -= {edge.uid, target.uid}
            del elements[-2:]

    for uid in store.current_uids():
        record = store.get_element(uid, scope)
        if record is not None and record.is_node:
            extend([record], {uid})
    return [Pathway(elements) for elements in results]


@settings(max_examples=150, deadline=None)
@given(graphs(), rpes())
def test_engine_agrees_with_brute_force(graph_spec, raw_rpe):
    store = load_graph(graph_spec)
    planner = Planner(SCHEMA)
    try:
        program = planner.compile(raw_rpe)
    except UnanchoredQueryError:
        return  # unanchored RPEs are rejected by design (§3.3)

    engine = {p.key() for p in store.find_pathways(program, TimeScope.current())}

    matcher = compile_matcher(raw_rpe.bind(SCHEMA))
    _, high = length_bounds(raw_rpe)
    brute = {
        p.key()
        for p in all_simple_pathways(store, max_elements=high + 2)
        if matches_pathway(matcher, p)
    }
    assert engine == brute


@settings(max_examples=40, deadline=None)
@given(graphs(), rpes())
def test_relational_backend_agrees_with_memgraph(graph_spec, raw_rpe):
    from repro.storage.relational.store import RelationalStore

    mem = load_graph(graph_spec)
    rel = RelationalStore(SCHEMA, clock=TransactionClock(start=10.0))
    node_specs, edge_specs = graph_spec
    uids = [
        rel.insert_node(class_name, {"status": status})
        for class_name, status in node_specs
    ]
    for class_name, source, target in edge_specs:
        rel.insert_edge(class_name, uids[source], uids[target])

    planner = Planner(SCHEMA)
    try:
        program = planner.compile(raw_rpe)
    except UnanchoredQueryError:
        return
    a = {p.key() for p in mem.find_pathways(program, TimeScope.current())}
    b = {p.key() for p in rel.find_pathways(program, TimeScope.current())}
    assert a == b


@pytest.mark.parametrize("seed", range(3))
def test_brute_force_helper_terminates(seed):
    # Sanity for the test helper itself on a dense-ish graph.
    store = MemGraphStore(SCHEMA, clock=TransactionClock(start=1.0))
    uids = [store.insert_node("A1", {"status": "g"}) for _ in range(4)]
    for source in uids:
        for target in uids:
            store.insert_edge("E", source, target)
    pathways = all_simple_pathways(store, max_elements=5)
    assert pathways
    assert all(p.is_simple() for p in pathways)
