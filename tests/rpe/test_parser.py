"""RPE text parsing, including the paper's notational variants."""

import pytest

from repro.errors import ParseError
from repro.rpe.ast import Alternation, Atom, Repetition, Sequence
from repro.rpe.parser import parse_rpe


class TestAtoms:
    def test_bare_atom(self):
        atom = parse_rpe("VM()")
        assert isinstance(atom, Atom)
        assert atom.class_name == "VM"
        assert atom.predicates == ()

    def test_atom_with_predicates(self):
        atom = parse_rpe("VM(status='Green', vcpus>=4)")
        assert [p.name for p in atom.predicates] == ["status", "vcpus"]
        assert atom.predicates[0].op == "=" and atom.predicates[0].value == "Green"
        assert atom.predicates[1].op == ">=" and atom.predicates[1].value == 4

    def test_numeric_and_boolean_literals(self):
        atom = parse_rpe("X(a=1, b=2.5, c=-3, d=true, e=false)")
        values = [p.value for p in atom.predicates]
        assert values == [1, 2.5, -3, True, False]

    def test_double_quoted_and_escaped_strings(self):
        atom = parse_rpe('X(a="it", b=\'o\\\'k\')')
        assert atom.predicates[0].value == "it"
        assert atom.predicates[1].value == "o'k"

    def test_qualified_class_name(self):
        atom = parse_rpe("VM:VMWare()")
        assert atom.class_name == "VM:VMWare"


class TestCombinators:
    def test_concatenation(self):
        seq = parse_rpe("VNF()->VFC()->VM()")
        assert isinstance(seq, Sequence)
        assert [a.class_name for a in seq.atoms()] == ["VNF", "VFC", "VM"]

    def test_paper_bracket_repetition(self):
        # VNF()->[Vertical()]{1,6}->Host(id=23245)   (§3.4)
        seq = parse_rpe("VNF()->[Vertical()]{1,6}->Host(id=23245)")
        rep = seq.parts[1]
        assert isinstance(rep, Repetition)
        assert (rep.low, rep.high) == (1, 6)
        assert isinstance(rep.body, Atom)

    def test_paper_suffix_repetition(self):
        # Vertical(){1,6} — the paper's other spelling.
        seq = parse_rpe("VNF(id=123)->Vertical(){1,6}->Host()")
        rep = seq.parts[1]
        assert isinstance(rep, Repetition)
        assert (rep.low, rep.high) == (1, 6)

    def test_paper_bracket_inside(self):
        # [HostedOn(){1,5}] — brackets as pure grouping.
        rep = parse_rpe("[HostedOn(){1,5}]")
        assert isinstance(rep, Repetition)
        assert (rep.low, rep.high) == (1, 5)

    def test_exact_repetition_shorthand(self):
        rep = parse_rpe("[VM()]{3}")
        assert (rep.low, rep.high) == (3, 3)

    def test_alternation(self):
        # (VM(id=55)|Docker(id=66))   (§5.1)
        alt = parse_rpe("(VM(id=55)|Docker(id=66))")
        assert isinstance(alt, Alternation)
        assert [a.class_name for a in alt.atoms()] == ["VM", "Docker"]

    def test_alternation_binds_loosest(self):
        expr = parse_rpe("VM()->Host()|Docker()")
        assert isinstance(expr, Alternation)
        assert isinstance(expr.alternatives[0], Sequence)

    def test_paper_full_example(self):
        # §5.1's running example.
        expr = parse_rpe(
            "VNF()->[HostedOn()]{1,3}->(VM(id=55)|Docker(id=66))"
            "->HostedOn(){1,2}->Host()"
        )
        names = [a.class_name for a in expr.atoms()]
        assert names == ["VNF", "HostedOn", "VM", "Docker", "HostedOn", "Host"]

    def test_nested_repetition(self):
        expr = parse_rpe("[[VM()]{2,2}]{1,3}")
        assert isinstance(expr, Repetition)
        assert isinstance(expr.body, Repetition)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "VM",
            "VM(",
            "VM()->",
            "->VM()",
            "VM(){1,}",
            "VM(){,3}",
            "VM(status=)",
            "VM(=5)",
            "VM() Host()",
            "VM()}{",
            "(VM()",
            "[VM()",
            "VM(status~'x')",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ParseError):
            parse_rpe(bad)

    def test_bad_repetition_bounds(self):
        from repro.errors import TypeCheckError

        with pytest.raises(TypeCheckError):
            parse_rpe("[VM()]{3,1}")
        with pytest.raises(TypeCheckError):
            parse_rpe("[VM()]{0,0}")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_rpe("VM(status='Green'")
        assert excinfo.value.position is not None


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "VM()",
            "VM(status='Green')",
            "VNF()->VFC()->VM()->Host(id=23245)",
            "VNF()->[Vertical()]{1,6}->Host(id=23245)",
            "(VM(id=55)|Docker(id=66))",
            "VNF()->[HostedOn()]{1,3}->(VM(id=55)|Docker(id=66))->[HostedOn()]{1,2}->Host()",
        ],
    )
    def test_render_reparse_fixpoint(self, text):
        parsed = parse_rpe(text)
        assert parse_rpe(parsed.render()) == parsed
