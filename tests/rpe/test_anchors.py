"""Anchor enumeration, costing and splitting (Section 5.1)."""


from repro.rpe.anchors import enumerate_anchor_plans, select_anchor_plan
from tests.rpe.util import rpe

#: Deterministic cost model: id-equality anchors are tiny, classes have
#: fixed sizes — mirrors what the CardinalityEstimator does with hints.
_CLASS_COST = {
    "VNF": 30, "VFC": 400, "VM": 800, "Docker": 100, "Host": 200,
    "Vertical": 2000, "HostedOn": 1400, "ConnectedTo": 5000,
}


def cost(atom):
    if atom.equality_value("id") is not None:
        return 1.0
    return float(_CLASS_COST.get(atom.class_name, 1000))


class TestEnumeration:
    def test_atom_is_its_own_anchor(self):
        plans = enumerate_anchor_plans(rpe("VM()"), cost)
        assert len(plans) == 1
        assert plans[0].cost == 800

    def test_sequence_offers_every_part(self):
        plans = enumerate_anchor_plans(rpe("VNF()->VFC()->Host()"), cost)
        anchors = {plan.splits[0].anchor.class_name for plan in plans}
        assert anchors == {"VNF", "VFC", "Host"}

    def test_repetition_unrolls_into_first_copy(self):
        # [r]{n,m} -> Sequence(r, [r]{n-1,m-1}); the anchor lives in the
        # first copy and the suffix carries the remaining repetitions.
        plans = enumerate_anchor_plans(rpe("[HostedOn()]{2,4}"), cost)
        assert len(plans) == 1
        split = plans[0].splits[0]
        assert split.anchor.class_name == "HostedOn"
        assert split.prefix is None
        assert "{1,3}" in split.suffix.render()

    def test_optional_repetition_unanchorable(self):
        assert enumerate_anchor_plans(rpe("[HostedOn()]{0,4}"), cost) == []

    def test_paper_malformed_rpe_has_no_anchor(self):
        malformed = rpe("[VNF()]{0,4}->[Vertical()]{0,4}")
        assert enumerate_anchor_plans(malformed, cost) == []

    def test_alternation_needs_one_anchor_per_branch(self):
        plans = enumerate_anchor_plans(rpe("(VM(id=55)|Docker(id=66))"), cost)
        assert len(plans) == 1
        plan = plans[0]
        assert len(plan.splits) == 2
        assert plan.cost == 2.0  # two id-equality atoms

    def test_alternation_with_unanchorable_branch_sinks_all(self):
        expr = rpe("(VM(id=55)|[HostedOn()]{0,3})")
        assert enumerate_anchor_plans(expr, cost) == []


class TestSelection:
    def test_id_predicate_wins(self):
        # §3.4's first example: the Host(id=...) atom is the obvious anchor.
        plan = select_anchor_plan(rpe("VNF()->VFC()->VM()->Host(id=23245)"), cost)
        assert plan.splits[0].anchor.class_name == "Host"
        assert plan.cost == 1.0

    def test_anchor_at_start_gives_forward_only_split(self):
        plan = select_anchor_plan(rpe("VNF(id=1)->[Vertical()]{1,6}->Host()"), cost)
        split = plan.splits[0]
        assert split.anchor.class_name == "VNF"
        assert split.prefix is None
        assert split.suffix is not None

    def test_anchor_at_end_gives_backward_only_split(self):
        plan = select_anchor_plan(rpe("VNF()->[Vertical()]{1,6}->Host(id=5)"), cost)
        split = plan.splits[0]
        assert split.anchor.class_name == "Host"
        assert split.suffix is None
        assert split.prefix is not None

    def test_middle_anchor_splits_both_ways(self):
        # §5.1: "If the selected anchor is in the middle of the RPE, the
        # query plan will have both forwards and backwards Extend operators."
        expr = rpe(
            "VNF()->[HostedOn()]{1,3}->(VM(id=55)|Docker(id=66))"
            "->[HostedOn()]{1,2}->Host()"
        )
        plan = select_anchor_plan(expr, cost)
        assert {s.anchor.class_name for s in plan.splits} == {"VM", "Docker"}
        for split in plan.splits:
            assert split.prefix is not None and split.suffix is not None
            assert "VNF" in split.prefix.render()
            assert "Host" in split.suffix.render()

    def test_per_branch_best_avoids_cross_product(self):
        # Each branch contributes exactly its best anchor; the number of
        # splits equals the number of branches, not their product.
        expr = rpe("(VNF()->Host(id=1)|VFC()->VM(id=2))->Vertical()")
        plans = enumerate_anchor_plans(expr, cost)
        best = min(plans, key=lambda p: p.cost)
        assert len(best.splits) == 2
        assert {s.anchor.class_name for s in best.splits} == {"Host", "VM"}

    def test_unanchored_returns_none(self):
        assert select_anchor_plan(rpe("[Vertical()]{0,3}"), cost) is None


class TestSplitReconstruction:
    def test_split_parts_cover_the_rpe(self):
        expr = rpe("VNF()->VFC(id=9)->VM()->Host()")
        plan = select_anchor_plan(expr, cost)
        split = plan.splits[0]
        assert split.anchor.class_name == "VFC"
        assert split.prefix.render() == "VNF()"
        assert split.suffix.render() == "VM()->Host()"

    def test_render_smoke(self):
        plan = select_anchor_plan(rpe("VNF(id=1)->Host()"), cost)
        assert "VNF" in plan.render()
        assert "ε" in plan.splits[0].render()
