"""Helpers for RPE tests: build bound RPEs and explicit pathways."""

from __future__ import annotations

from repro.model.elements import EdgeRecord, NodeRecord
from repro.model.pathway import Pathway
from repro.rpe.parser import parse_rpe
from repro.schema.builtin import build_network_schema
from repro.schema.registry import Schema
from repro.temporal.interval import FOREVER, Interval

SCHEMA: Schema = build_network_schema()


def rpe(text: str, schema: Schema | None = None):
    """Parse and bind an RPE against the (default network) schema."""
    return parse_rpe(text).bind(schema or SCHEMA)


def pathway(spec: str, schema: Schema | None = None, **field_overrides) -> Pathway:
    """Build a pathway from a compact spec string.

    Spec: ``"VMWare:1 OnServer:2 Host:3"`` — alternating ``Class:uid``
    element descriptions.  Edge endpoints are inferred from neighbours.
    ``field_overrides`` maps uid (as str) to a field dict.
    """
    schema = schema or SCHEMA
    parts = spec.split()
    elements = []
    for position, part in enumerate(parts):
        class_name, _, uid_text = part.partition(":")
        uid = int(uid_text)
        fields = dict(field_overrides.get(f"f{uid}", {}))
        fields.setdefault("name", f"el{uid}")
        cls = schema.resolve(class_name)
        period = Interval(0.0, FOREVER)
        if position % 2 == 0:
            elements.append(NodeRecord(uid=uid, cls=cls, fields=fields, period=period))
        else:
            source = int(parts[position - 1].rpartition(":")[2])
            target = int(parts[position + 1].rpartition(":")[2])
            elements.append(
                EdgeRecord(
                    uid=uid, cls=cls, fields=fields, period=period,
                    source_uid=source, target_uid=target,
                )
            )
    return Pathway(elements)
