"""Normalization and length bounds."""


from repro.rpe.ast import Alternation, Atom, Repetition, Sequence
from repro.rpe.normalize import admits_empty, length_bounds, normalize
from repro.rpe.parser import parse_rpe


def test_flatten_nested_sequences():
    raw = Sequence((parse_rpe("A()->B()"), parse_rpe("C()")))
    flat = normalize(raw)
    assert isinstance(flat, Sequence)
    assert [a.class_name for a in flat.atoms()] == ["A", "B", "C"]
    assert all(isinstance(part, Atom) for part in flat.parts)


def test_flatten_nested_alternations_and_dedup():
    raw = Alternation(
        (parse_rpe("A()|B()"), parse_rpe("B()|C()"))
    )
    flat = normalize(raw)
    assert isinstance(flat, Alternation)
    assert [a.class_name for a in flat.atoms()] == ["A", "B", "C"]


def test_singleton_unwrap():
    assert isinstance(normalize(Sequence((parse_rpe("A()"),))), Atom)
    assert isinstance(normalize(Alternation((parse_rpe("A()"),))), Atom)
    assert isinstance(normalize(parse_rpe("[A()]{1,1}")), Atom)


def test_nested_repetitions_not_collapsed():
    # [[r]{3,3}]{1,2} admits 3 or 6 copies but never 4 — collapsing to
    # {3,6} would be wrong.
    expr = normalize(parse_rpe("[[A()]{3,3}]{1,2}"))
    assert isinstance(expr, Repetition)
    assert isinstance(expr.body, Repetition)


class TestLengthBounds:
    def test_atom(self):
        assert length_bounds(parse_rpe("A()")) == (1, 1)

    def test_sequence_counts_glue(self):
        # Two atoms: at least 2 elements, at most 3 (one skipped element).
        assert length_bounds(parse_rpe("A()->B()")) == (2, 3)
        assert length_bounds(parse_rpe("A()->B()->C()")) == (3, 5)

    def test_alternation_spans(self):
        assert length_bounds(parse_rpe("A()|(B()->C())")) == (1, 3)

    def test_repetition(self):
        assert length_bounds(parse_rpe("[A()]{2,4}")) == (2, 7)
        assert length_bounds(parse_rpe("[A()]{0,4}")) == (0, 7)

    def test_paper_query_bound(self):
        low, high = length_bounds(
            parse_rpe("VNF()->[Vertical()]{1,6}->Host(id=23245)")
        )
        assert low == 3  # VNF, one Vertical, Host
        assert high == 15  # 1 + 6 + 5 (inner glue) + 1 + 2 (outer glue)


class TestAdmitsEmpty:
    def test_paper_malformed_example(self):
        # [VNF()]{0,4}->[Vertical()]{0,4} "does not have an anchor because
        # the empty path satisfies the RPE" (§3.3).
        assert admits_empty(parse_rpe("[VNF()]{0,4}->[Vertical()]{0,4}"))

    def test_anchored_rpes_do_not(self):
        assert not admits_empty(parse_rpe("VNF()->[Vertical()]{0,4}"))
        assert not admits_empty(parse_rpe("A()"))
