"""Dotted-path predicates into structured data.

The paper lists "full query access to structured data" as still under
development (§5); this implements and pins down its semantics: container
steps are implicit and existential — ``Router(routing_table.address=X)``
matches a router if *any* routing-table entry has that address.
"""

import pytest

from repro.errors import TypeCheckError
from repro.rpe.parser import parse_rpe
from repro.storage.base import TimeScope
from tests.rpe.util import rpe

CURRENT = TimeScope.current()

TABLE = [
    {"address": "10.0.0.0", "mask": 8, "interface": "ge0"},
    {"address": "192.168.1.0", "mask": 24, "interface": "ge1"},
]


class TestParsing:
    def test_dotted_path_parses(self):
        atom = parse_rpe("Router(routing_table.address='10.0.0.0')")
        assert atom.predicates[0].name == "routing_table.address"
        assert atom.predicates[0].path == ("routing_table", "address")

    def test_render_round_trips(self):
        atom = parse_rpe("Router(routing_table.mask>=8)")
        assert parse_rpe(atom.render()) == atom


class TestBinding:
    def test_valid_path_binds(self):
        bound = rpe("Router(routing_table.address='10.0.0.0')")
        assert bound.bound

    def test_unknown_leaf_rejected(self):
        with pytest.raises(TypeCheckError, match="has no"):
            rpe("Router(routing_table.bogus=1)")

    def test_descending_into_primitive_rejected(self):
        with pytest.raises(TypeCheckError, match="primitive"):
            rpe("Router(routing_table.mask.bits=1)")

    def test_unknown_root_field_rejected(self):
        with pytest.raises(TypeCheckError, match="unknown field"):
            rpe("Router(forwarding_table.address='10.0.0.0')")

    def test_composite_field_path(self):
        # descriptor is a composite (not a container) on VNF.
        bound = rpe("VNF(descriptor.vendor='acme')")
        assert bound.bound


class TestMatching:
    # Bind atoms against the store's own schema: class identity matters.
    def make_router(self, store):
        return store.insert_node("Router", {"name": "r1", "routing_table": TABLE})

    def test_existential_over_list(self, mem_store):
        uid = self.make_router(mem_store)
        record = mem_store.get_element(uid, CURRENT)
        schema = mem_store.schema
        assert rpe("Router(routing_table.address='10.0.0.0')", schema).matches(record)
        assert rpe("Router(routing_table.address='192.168.1.0')", schema).matches(record)
        assert not rpe("Router(routing_table.address='8.8.8.8')", schema).matches(record)

    def test_comparisons_on_nested_numbers(self, mem_store):
        record = mem_store.get_element(self.make_router(mem_store), CURRENT)
        schema = mem_store.schema
        assert rpe("Router(routing_table.mask>=24)", schema).matches(record)
        assert not rpe("Router(routing_table.mask>24)", schema).matches(record)

    def test_composite_member(self, mem_store):
        uid = mem_store.insert_node(
            "DNS", {"name": "d", "descriptor": {"vendor": "acme", "version": "2"}}
        )
        record = mem_store.get_element(uid, CURRENT)
        schema = mem_store.schema
        assert rpe("VNF(descriptor.vendor='acme')", schema).matches(record)
        assert not rpe("VNF(descriptor.vendor='initech')", schema).matches(record)

    def test_absent_structure_never_matches(self, mem_store):
        uid = mem_store.insert_node("Router", {"name": "bare"})
        record = mem_store.get_element(uid, CURRENT)
        assert not rpe("Router(routing_table.mask>=0)", mem_store.schema).matches(record)


class TestEndToEnd:
    @pytest.mark.parametrize("backend", ["memory", "relational"])
    def test_query_on_both_backends(self, backend):
        from repro import NepalDB
        from repro.temporal.clock import TransactionClock

        db = NepalDB(backend=backend, clock=TransactionClock(start=1.0))
        db.insert_node("Router", {"name": "r1", "routing_table": TABLE})
        db.insert_node("Router", {"name": "r2", "routing_table": [
            {"address": "172.16.0.0", "mask": 12, "interface": "xe0"},
        ]})
        result = db.query(
            "Select source(P).name From PATHS P "
            "Where P MATCHES Router(routing_table.address='10.0.0.0')"
        )
        assert result.scalars() == ["r1"]

    def test_context_dependent_traversal(self, mem_store, clock):
        """The §8 'context-dependent RPE evaluation (e.g. routing tables)'
        direction: constrain a hop by the router's table contents."""
        from repro.plan.planner import Planner
        from repro.stats.cardinality import CardinalityEstimator

        r1 = mem_store.insert_node("Router", {"name": "r1", "routing_table": TABLE})
        r2 = mem_store.insert_node("Router", {"name": "r2", "routing_table": [
            {"address": "172.16.0.0", "mask": 12, "interface": "xe0"},
        ]})
        spine = mem_store.insert_node("SpineSwitch", {"name": "s", "ports": 64})
        mem_store.insert_symmetric_edge("SwitchRouter", spine, r1)
        mem_store.insert_symmetric_edge("SwitchRouter", spine, r2)
        planner = Planner(mem_store.schema, CardinalityEstimator(mem_store))
        program = planner.compile(
            f"Switch(id={spine})->SwitchRouter()"
            "->Router(routing_table.address='10.0.0.0')"
        )
        found = mem_store.find_pathways(program, CURRENT)
        assert {p.target.uid for p in found} == {r1}
