"""Whole-pathway satisfaction semantics (Section 3.3).

These tests pin down the subtle parts of the matching definition: the
four-way concatenation split (same-kind skips only), implicit endpoint
nodes of edge atoms, bounded repetition with glue between copies, and the
collapse of empty-matching ``{0,m}`` seams.
"""


from repro.rpe.match import matches_pathway
from repro.rpe.nfa import ANY, ANY_EDGE, ANY_NODE, build_nfa, reverse_rpe
from tests.rpe.util import pathway, rpe


def matches(rpe_text: str, spec: str, **fields) -> bool:
    return matches_pathway(rpe(rpe_text), pathway(spec, **fields))


class TestAtoms:
    def test_single_node_atom(self):
        assert matches("Host()", "Host:1")
        assert not matches("Host()", "VMWare:1")

    def test_single_node_atom_rejects_longer_paths(self):
        assert not matches("Host()", "Host:1 SwitchSwitch:2 Host:3")

    def test_edge_atom_has_implicit_endpoint_nodes(self):
        # "e1 is shorthand for n, e1, n'" — a lone edge atom matches a
        # 3-element pathway with unconstrained endpoints.
        assert matches("OnServer()", "VMWare:1 OnServer:2 Host:3")
        assert not matches("OnServer()", "VMWare:1 OnVM:2 Host:3")
        assert not matches("OnServer()", "Host:1")


class TestConcatenation:
    def test_node_edge_adjacent(self):
        assert matches("VM()->OnServer()", "VMWare:1 OnServer:2 Host:3")

    def test_node_node_skips_one_edge(self):
        # Condition 3: the edge between two node-matched segments is
        # skipped and unconstrained.
        assert matches("VM()->Host()", "VMWare:1 OnServer:2 Host:3")
        assert matches("VM()->Host()", "VMWare:1 ServerSwitch:2 Host:3")

    def test_node_node_cannot_skip_two(self):
        assert not matches(
            "VM()->Host()", "VMWare:1 VmNetwork:2 VirtualNetwork:3 NetworkVRouter:4 VirtualRouter:5"
        )
        assert not matches(
            "VNF:DNS()->Host()",
            "DNS:1 ComposedOf:2 ProxyVFC:3 OnVM:4 VMWare:5",
        )

    def test_edge_edge_skips_one_node(self):
        # Condition 4: the node between two edge-matched segments is skipped.
        assert matches(
            "OnVM()->OnServer()", "ProxyVFC:1 OnVM:2 VMWare:3 OnServer:4 Host:5"
        )

    def test_paper_vertical_chain(self):
        # §3.4's first example: VNF()->VFC()->VM()->Host(id=...).
        spec = "Firewall:1 ComposedOf:2 ProxyVFC:3 OnVM:4 VMWare:5 OnServer:6 Host:7"
        assert matches("VNF()->VFC()->VM()->Host(id=7)", spec)
        assert not matches("VNF()->VFC()->VM()->Host(id=8)", spec)

    def test_mixed_node_and_edge_atoms(self):
        spec = "Firewall:1 ComposedOf:2 ProxyVFC:3 OnVM:4 VMWare:5"
        assert matches("VNF()->ComposedOf()->VFC()->OnVM()->VM()", spec)
        assert matches("VNF()->ComposedOf()->OnVM()->VM()", spec)  # skip VFC node
        assert matches("VNF()->VFC()->OnVM()", spec)  # trailing pad VM node


class TestRepetition:
    def test_bounded_range(self):
        two_hops = "Host:1 SwitchSwitch:2 TorSwitch:3 SwitchSwitch:4 Host:5"
        assert matches("Host()->[ConnectedTo()]{1,4}->Host()", two_hops)
        assert matches("Host()->[ConnectedTo()]{2,2}->Host()", two_hops)
        assert not matches("Host()->[ConnectedTo()]{3,4}->Host()", two_hops)

    def test_repetition_glues_between_copies(self):
        # Each Connects copy consumes one edge; the nodes between copies are
        # the same-kind skips of the r->r->...->r expansion.
        assert matches(
            "[SwitchSwitch()]{2,2}",
            "TorSwitch:1 SwitchSwitch:2 TorSwitch:3 SwitchSwitch:4 TorSwitch:5",
        )

    def test_vertical_generalization(self):
        # §3.4's second example with the Vertical superclass.
        spec = (
            "Firewall:1 ComposedOf:2 ProxyVFC:3 OnVM:4 VMWare:5 OnServer:6 Host:7"
        )
        assert matches("VNF()->[Vertical()]{1,6}->Host(id=7)", spec)
        # FlowsTo is Horizontal, not Vertical.
        bad = "Firewall:1 FlowsTo:2 DNS:3"
        assert not matches("VNF()->[Vertical()]{1,6}->VNF()", bad)

    def test_zero_minimum_block_collapses(self):
        # With zero copies the expression collapses to VM()->VM(), which
        # still needs two distinct VM nodes (and the skipped edge between) —
        # a single node is NOT a match.
        assert not matches("VM()->[ConnectedTo()]{0,2}->VM()", "VMWare:1")
        assert matches(
            "VM()->[FlowsTo()]{0,2}->VM()", "VMWare:1 VmNetwork:2 OnMetal:3"
        )
        assert matches(
            "VM()->[ConnectedTo()]{0,2}->VM()",
            "VMWare:1 VmNetwork:2 VirtualNetwork:3 VmNetwork:4 OnMetal:5",
        )

    def test_zero_minimum_does_not_invent_elements(self):
        # With zero copies the seam collapses: VM()->[r]{0,m} matched by a
        # lone VM must not absorb a dangling edge+node.
        assert not matches(
            "VM()->[FlowsTo()]{0,2}", "VMWare:1 VmNetwork:2 VirtualNetwork:3"
        )


class TestAlternation:
    def test_either_branch(self):
        assert matches("(VM()|Docker())", "Docker:1")
        assert matches("(VM()|Docker())", "OnMetal:1")
        assert not matches("(VM()|Docker())", "Host:1")

    def test_paper_alternating_anchor_example(self):
        spec = (
            "Firewall:1 ComposedOf:2 ProxyVFC:3 OnVM:4 Docker:5 OnServer:6 Host:7"
        )
        expr = (
            "VNF()->[Vertical()]{1,2}->(VM(id=5)|Docker(id=5))"
            "->[Vertical()]{1,2}->Host()"
        )
        assert matches(expr, spec)

    def test_branches_of_different_kind(self):
        expr = "VFC()->(OnVM()|VM())"
        # Edge branch: OnVM() consumes the edge, the VM node is padding.
        assert matches(expr, "ProxyVFC:1 OnVM:2 VMWare:3")
        # Node branch: the edge is the same-kind skip, VM() takes the node.
        assert matches(expr, "ProxyVFC:1 OnVM:2 OnMetal:3")
        # Neither branch admits a VFC at the end.
        assert not matches(expr, "ProxyVFC:1 FlowsTo:2 WebServerVFC:3")


class TestEndpointPadding:
    def test_leading_pad_for_edge_start(self):
        assert matches("OnServer()->Host()", "VMWare:1 OnServer:2 Host:3")

    def test_pad_nodes_are_single(self):
        # Padding is one node, not a whole prefix.
        assert not matches(
            "OnServer()", "ProxyVFC:1 OnVM:2 VMWare:3 OnServer:4 Host:5"
        )


class TestReverse:
    def test_reverse_matches_mirror(self):
        expr = rpe("VNF()->VFC()->VM()")
        spec = "Firewall:1 ComposedOf:2 ProxyVFC:3 OnVM:4 VMWare:5"
        forward = pathway(spec)
        assert matches_pathway(expr, forward)
        mirrored = forward.reversed()
        assert matches_pathway(reverse_rpe(expr), mirrored)
        assert not matches_pathway(reverse_rpe(expr), forward)


class TestGlueSpecialization:
    def test_node_node_seam_allows_edge_skip_only(self):
        nfa = build_nfa(rpe("VM()->Host()"), leading="none", trailing="none")
        labels = {
            label
            for arcs in nfa.transitions.values()
            for label, _ in arcs
            if isinstance(label, str)
        }
        assert ANY_EDGE in labels
        assert ANY not in labels
        assert ANY_NODE not in labels

    def test_edge_edge_seam_allows_node_skip_only(self):
        nfa = build_nfa(rpe("OnVM()->OnServer()"), leading="none", trailing="none")
        labels = {
            label
            for arcs in nfa.transitions.values()
            for label, _ in arcs
            if isinstance(label, str)
        }
        assert ANY_NODE in labels
        assert ANY_EDGE not in labels

    def test_acyclic(self):
        nfa = build_nfa(rpe("VNF()->[Vertical()]{1,6}->Host()"))
        order = nfa.topological_states()
        position = {state: index for index, state in enumerate(order)}
        for source, arcs in nfa.transitions.items():
            for _, target in arcs:
                assert position[source] < position[target]
