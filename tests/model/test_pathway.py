"""Pathway structure, functions and temporal derivation."""

import pytest

from repro.errors import NepalError
from repro.model.elements import EdgeRecord, NodeRecord
from repro.model.pathway import Pathway
from repro.schema.builtin import build_network_schema
from repro.temporal.interval import FOREVER, Interval, IntervalSet


@pytest.fixture(scope="module")
def schema():
    return build_network_schema()


def node(schema, uid, cls="Host", start=0.0, end=FOREVER):
    return NodeRecord(
        uid=uid, cls=schema.resolve(cls), fields={"name": f"n{uid}"},
        period=Interval(start, end),
    )


def edge(schema, uid, src, dst, cls="SwitchSwitch", start=0.0, end=FOREVER):
    return EdgeRecord(
        uid=uid, cls=schema.resolve(cls), fields={},
        period=Interval(start, end), source_uid=src, target_uid=dst,
    )


@pytest.fixture
def chain(schema):
    n1 = node(schema, 1, "TorSwitch")
    n2 = node(schema, 3, "TorSwitch")
    n3 = node(schema, 5, "TorSwitch")
    e1 = edge(schema, 2, 1, 3)
    e2 = edge(schema, 4, 3, 5)
    return Pathway([n1, e1, n2, e2, n3])


class TestStructure:
    def test_single_node_is_a_pathway(self, schema):
        p = Pathway([node(schema, 1)])
        assert p.hop_count == 0
        assert p.source is p.target

    def test_must_start_and_end_with_node(self, schema):
        with pytest.raises(NepalError):
            Pathway([node(schema, 1), edge(schema, 2, 1, 3)])
        with pytest.raises(NepalError):
            Pathway([edge(schema, 2, 1, 3)])
        with pytest.raises(NepalError):
            Pathway([])

    def test_alternation_enforced(self, schema):
        with pytest.raises(NepalError):
            Pathway([node(schema, 1), node(schema, 2), node(schema, 3)])

    def test_accessors(self, chain):
        assert chain.source.uid == 1
        assert chain.target.uid == 5
        assert chain.hop_count == 2
        assert [n.uid for n in chain.nodes] == [1, 3, 5]
        assert [e.uid for e in chain.edges] == [2, 4]
        assert len(chain) == 5
        assert chain[0].uid == 1

    def test_key_and_equality(self, chain, schema):
        same = Pathway(list(chain.elements))
        assert chain == same
        assert hash(chain) == hash(same)
        assert chain.key() == (1, 2, 3, 4, 5)

    def test_is_simple(self, chain, schema):
        assert chain.is_simple()
        n1 = node(schema, 1)
        loop = Pathway([n1, edge(schema, 2, 1, 1), n1])
        assert not loop.is_simple()


class TestDerivation:
    def test_concat(self, schema):
        a = Pathway([node(schema, 1), edge(schema, 2, 1, 3), node(schema, 3)])
        b = Pathway([node(schema, 3), edge(schema, 4, 3, 5), node(schema, 5)])
        joined = a.concat(b)
        assert joined.key() == (1, 2, 3, 4, 5)

    def test_concat_requires_shared_endpoint(self, schema):
        a = Pathway([node(schema, 1)])
        b = Pathway([node(schema, 2)])
        with pytest.raises(NepalError):
            a.concat(b)

    def test_reversed(self, chain):
        assert chain.reversed().key() == (5, 4, 3, 2, 1)

    def test_computed_validity_intersects_periods(self, schema):
        n1 = node(schema, 1, start=0, end=100)
        e1 = edge(schema, 2, 1, 3, start=10, end=50)
        n2 = node(schema, 3, start=20, end=FOREVER)
        p = Pathway([n1, e1, n2])
        assert p.computed_validity().intervals == (Interval(20, 50),)

    def test_with_validity(self, chain):
        validity = IntervalSet([Interval(0, 1)])
        stamped = chain.with_validity(validity)
        assert stamped.validity == validity
        assert chain.validity is None

    def test_render(self, chain):
        text = chain.render()
        assert "-SwitchSwitch->" in text
        assert text.startswith("TorSwitch#1")
