"""Element records: typing, versions, field access."""

import pytest

from repro.model.elements import EdgeRecord, NodeRecord
from repro.schema.builtin import build_network_schema
from repro.temporal.interval import FOREVER, Interval


@pytest.fixture(scope="module")
def schema():
    return build_network_schema()


def make_node(schema, uid=1, cls="VMWare", fields=None, period=None):
    return NodeRecord(
        uid=uid,
        cls=schema.resolve(cls),
        fields=fields or {"name": "vm-1", "status": "Green"},
        period=period or Interval(10.0, FOREVER),
    )


def test_node_identity_and_kind(schema):
    node = make_node(schema)
    assert node.is_node and not node.is_edge
    assert node.is_current


def test_virtual_id_field(schema):
    node = make_node(schema, uid=42)
    assert node.get("id") == 42
    assert node.get("name") == "vm-1"
    assert node.get("missing", "default") == "default"


def test_instance_of_generalization(schema):
    node = make_node(schema)
    assert node.instance_of(schema.resolve("VM"))
    assert node.instance_of(schema.resolve("Container"))
    assert node.instance_of(schema.resolve("Node"))
    assert not node.instance_of(schema.resolve("Docker"))


def test_with_period_closes_version(schema):
    node = make_node(schema)
    closed = node.with_period(Interval(10.0, 20.0))
    assert not closed.is_current
    assert closed.uid == node.uid
    assert closed.fields == node.fields


def test_edge_endpoints(schema):
    edge = EdgeRecord(
        uid=7,
        cls=schema.resolve("OnServer"),
        fields={},
        period=Interval(0.0, FOREVER),
        source_uid=1,
        target_uid=2,
    )
    assert edge.is_edge
    assert edge.other_end(1) == 2
    assert edge.other_end(2) == 1
    assert "1->2" in str(edge)


def test_str_includes_name(schema):
    assert "[vm-1]" in str(make_node(schema))
    unnamed = make_node(schema, fields={"status": "Green"})
    assert "[" not in str(unnamed)


def test_describe_drops_empty_fields(schema):
    node = make_node(schema, fields={"name": "vm-1", "status": "", "flavor": None})
    assert "status" not in node.describe()
    assert "vm-1" in node.describe()
