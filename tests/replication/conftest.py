"""Shared fixtures for the replication suite: in-process server pairs."""

from __future__ import annotations

import pytest

from repro.core.database import NepalDB
from repro.server import NepalClient, NepalServer, ServerConfig


@pytest.fixture
def primary(tmp_path):
    """A durable primary server with a client."""
    db = NepalDB(data_dir=str(tmp_path / "primary"))
    server = NepalServer(db, ServerConfig(port=0, workers=4, queue_depth=8))
    server.start()
    yield server, NepalClient(*server.address)
    server.graceful_stop()


@pytest.fixture
def replica_of(tmp_path):
    """Factory: spin up a replica of a given server; cleaned up in order."""
    spawned: list[NepalServer] = []

    def make(primary_server: NepalServer, name: str = "replica") -> tuple[NepalServer, NepalClient]:
        db = NepalDB(data_dir=str(tmp_path / name))
        server = NepalServer(db, ServerConfig(port=0, workers=4, queue_depth=8))
        server.start()
        server.replication.become_replica("%s:%d" % primary_server.address)
        spawned.append(server)
        return server, NepalClient(*server.address)

    yield make
    for server in spawned:
        server.graceful_stop()


def wait_caught_up(replica_server: NepalServer, timeout: float = 15.0) -> None:
    puller = replica_server.replication._puller
    assert puller is not None, "server is not replicating"
    assert puller.wait_caught_up(timeout=timeout), (
        f"replica never caught up: {puller.status()}"
    )
