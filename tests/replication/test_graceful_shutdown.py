"""Graceful shutdown: in-flight work drains, WAL flushes, clean restart.

In-process tests cover ``NepalServer.graceful_stop``; the subprocess test
sends a real ``SIGTERM`` to ``nepal serve`` and checks the journal it
leaves behind recovers with nothing torn and nothing lost.
"""

from __future__ import annotations

import signal

import pytest

from repro.core.database import NepalDB
from repro.server import NepalClient, NepalServer, ServerConfig
from repro.storage.durable import WAL_FILE
from repro.storage.wal import scan_wal


class TestGracefulStop:
    def test_stop_closes_cleanly_and_refuses_new_connections(self, tmp_path):
        db = NepalDB(data_dir=str(tmp_path / "node"))
        server = NepalServer(db, ServerConfig(port=0))
        server.start()
        client = NepalClient(*server.address)
        client.insert_node("VM", {"name": "v1"})
        server.graceful_stop()
        with pytest.raises(OSError):
            client.healthz()

    def test_stop_flushes_the_wal(self, tmp_path):
        db = NepalDB(data_dir=str(tmp_path / "node"))
        server = NepalServer(db, ServerConfig(port=0))
        server.start()
        client = NepalClient(*server.address)
        uids = [client.insert_node("VM", {"name": f"v{i}"}) for i in range(5)]
        server.graceful_stop()
        scan = scan_wal(tmp_path / "node" / WAL_FILE)
        assert scan.torn_bytes == 0
        assert len(scan.records) == 5
        # And a fresh database over the same directory sees every write.
        reopened = NepalDB(data_dir=str(tmp_path / "node"))
        assert set(uids) <= set(reopened.store.known_uids())
        reopened.close()

    def test_stop_detaches_replication(self, tmp_path):
        primary_db = NepalDB(data_dir=str(tmp_path / "p"))
        primary = NepalServer(primary_db, ServerConfig(port=0))
        primary.start()
        replica_db = NepalDB(data_dir=str(tmp_path / "r"))
        replica = NepalServer(replica_db, ServerConfig(port=0))
        replica.start()
        puller = replica.replication.become_replica("%s:%d" % primary.address)
        assert puller.wait_caught_up(timeout=10)
        replica.graceful_stop()
        assert not puller._thread.is_alive()
        primary.graceful_stop()

    def test_stop_is_idempotent(self, tmp_path):
        db = NepalDB(data_dir=str(tmp_path / "node"))
        server = NepalServer(db, ServerConfig(port=0))
        server.start()
        server.graceful_stop()
        server.graceful_stop()  # second call must not raise


@pytest.mark.replication
class TestSigterm:
    def test_sigterm_exits_zero_and_leaves_a_clean_journal(self, tmp_path):
        from repro.replication.harness import ReplicaSet

        cluster = ReplicaSet(tmp_path, replicas=0)
        try:
            cluster.start()
            client = cluster.primary.client()
            for i in range(10):
                client.insert_node("VM", {"name": f"v{i}"})
            process = cluster.primary.process
            process.terminate()  # SIGTERM
            assert process.wait(timeout=30) == 0
            scan = scan_wal(
                tmp_path / f"{cluster.primary.name}-data" / WAL_FILE
            )
            assert scan.torn_bytes == 0
            assert len(scan.records) == 10
            # The revived node serves all ten writes.
            cluster.start_node(cluster.primary)
            cluster.wait_ready(cluster.primary)
            rows = cluster.primary.client().query(
                "Retrieve P From PATHS P Where P MATCHES VM()"
            )["rows"]
            assert len(rows) == 10
        finally:
            cluster.stop()

    def test_sigterm_on_replica_preserves_prefix(self, tmp_path):
        from repro.replication.harness import ReplicaSet

        cluster = ReplicaSet(tmp_path, replicas=1)
        try:
            cluster.start()
            client = cluster.primary.client()
            for i in range(10):
                client.insert_node("VM", {"name": f"v{i}"})
            replica = cluster.nodes[1]
            # Let it catch up, then SIGTERM it.
            deadline_statuses = {}
            import time
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                deadline_statuses = cluster.statuses()
                if deadline_statuses.get(replica.name, {}).get("last_lsn") == 10:
                    break
                time.sleep(0.05)
            process = replica.process
            process.terminate()
            assert process.wait(timeout=30) == 0
            scan = scan_wal(tmp_path / f"{replica.name}-data" / WAL_FILE)
            assert scan.torn_bytes == 0
            # The replica journal is a byte-identical prefix of the
            # primary's (possibly the whole thing).
            primary_wal = (
                tmp_path / f"{cluster.primary.name}-data" / WAL_FILE
            ).read_bytes()
            replica_wal = (
                tmp_path / f"{replica.name}-data" / WAL_FILE
            ).read_bytes()
            assert primary_wal.startswith(replica_wal)
        finally:
            cluster.stop()
