"""Property: any byte prefix of the shipped WAL is prefix-consistent.

A replica that stops receiving at an arbitrary byte (crash, partition,
promotion) must hold exactly the state the primary had after some whole
number of its commits — never a torn half-write, never a reordering.
Hypothesis drives the cut point; the oracle is the list of history
digests of the primary replayed record-by-record.
"""

from __future__ import annotations

import pytest

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.schema.registry import Schema
from repro.storage.durable import DurableStore
from repro.storage.wal import FrameDecoder, history_digest
from repro.temporal.clock import TransactionClock

T0 = 1_000.0


def build_schema() -> Schema:
    schema = Schema("prefix-test")
    schema.define_node("Box", fields={"status": "string", "size": "integer"})
    schema.define_edge("Link", fields={"weight": "integer"})
    return schema


def open_store(path) -> DurableStore:
    return DurableStore.open(path, build_schema(), clock=TransactionClock(start=T0))


@pytest.fixture(scope="module")
def oracle(tmp_path_factory):
    """The primary's WAL bytes plus, for every commit boundary k, the
    digest of a store holding exactly the first k records."""
    base = tmp_path_factory.mktemp("prefix-oracle")
    primary = open_store(base / "primary")
    uids = []
    for i in range(8):
        uids.append(primary.insert_node("Box", {"status": "up", "size": i}))
    primary.insert_edge("Link", uids[0], uids[1], {"weight": 1})
    primary.update_element(uids[2], {"status": "down"})
    primary.delete_element(uids[3])
    with primary.bulk():
        a = primary.insert_node("Box", {"status": "bulk-a"})
        primary.insert_edge("Link", a, uids[4], {"weight": 2})
    primary.update_element(uids[5], {"status": "amber"})
    wal_bytes, _ = primary.read_wal(0)
    full_digest = history_digest(primary.inner)
    primary.close()

    # Replay record-by-record to collect the digest at every commit
    # boundary.  bulk batches only commit at bulk_commit, so boundaries
    # inside a batch repeat the pre-batch digest.
    digests = []
    replayer = open_store(base / "replayer")
    replayer.begin_replication("oracle")
    decoder = FrameDecoder()
    boundaries = [end for _, end in decoder.feed(wal_bytes)]
    digests.append(history_digest(replayer.inner))  # zero records
    previous = 0
    for end in boundaries:
        replayer.replication_apply(wal_bytes[previous:end])
        digests.append(history_digest(replayer.inner))
        previous = end
    assert digests[-1] == full_digest
    replayer.close()
    return wal_bytes, digests


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_any_byte_prefix_is_commit_prefix_consistent(oracle, tmp_path_factory, data):
    wal_bytes, digests = oracle
    cut = data.draw(st.integers(min_value=0, max_value=len(wal_bytes)))
    replica = open_store(tmp_path_factory.mktemp("replica") / "r")
    replica.begin_replication("test")
    replica.replication_apply(wal_bytes[:cut])
    digest = history_digest(replica.inner)
    # The replica's state must be exactly the primary's commit prefix for
    # the number of whole frames the cut contains (frames inside a still-
    # open bulk batch don't advance the digest — the oracle list encodes
    # that, because it was built by frame-at-a-time apply).
    whole_frames = len(FrameDecoder().feed(wal_bytes[:cut]))
    assert digest == digests[whole_frames]
    # After promotion (end_replication) the rolled-back journal still
    # holds the same prefix state.
    replica.end_replication()
    assert history_digest(replica.inner) == digest
    replica.close()
