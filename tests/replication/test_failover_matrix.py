"""The failover chaos matrix: SIGKILL the primary, promote, verify.

The acceptance gate of the replication subsystem, run against real
``nepal serve`` subprocesses:

* every write the cluster acknowledged before, during, or after the
  failover is present on the promoted primary (commit-prefix oracle:
  the new primary's journal, replayed locally, contains every
  acknowledged uid);
* paper-corpus query results from the promoted primary are byte-identical
  to a single-node oracle rebuilt from its shipped journal;
* a revived stale primary is fenced — a write carrying the new epoch is
  refused with 409 and the node drops to the fenced role.

Set ``NEPAL_REPLICATION_REPORT_DIR`` to collect per-scenario JSON
artifacts (node statuses, write ledger, journal paths) — CI uploads them
on failure.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.core.database import NepalDB
from repro.core.resilience import ResiliencePolicy
from repro.replication import ClusterClient, NoPrimaryError
from repro.replication.harness import ReplicaSet
from repro.server.client import NepalClient
from repro.storage.wal import history_digest

pytestmark = pytest.mark.replication

CORPUS = [
    "Retrieve P From PATHS P Where P MATCHES VM()",
    "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()",
    "Retrieve P From PATHS P Where P MATCHES Host()",
]


def dump_report(payload: dict, name: str) -> None:
    """Persist a scenario report when CI asks for artifacts."""
    directory = os.environ.get("NEPAL_REPLICATION_REPORT_DIR")
    if not directory:
        return
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, f"{name}.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)


def cluster_client(cluster: ReplicaSet) -> ClusterClient:
    return ClusterClient(
        [node.address for node in cluster.nodes],
        policy=ResiliencePolicy(
            max_attempts=30, base_delay=0.05, max_delay=0.5, jitter=0.1, seed=0
        ),
    )


def fetch_journal(client: NepalClient) -> bytes:
    """The node's full committed journal, over the public protocol."""
    chunks = []
    offset = 0
    while True:
        status, headers, body = client.raw_request(
            "GET", f"/replication/wal?offset={offset}&limit={1 << 20}"
        )
        assert status == 200, f"wal fetch failed: HTTP {status}"
        if not body:
            break
        chunks.append(body)
        offset += len(body)
        if offset >= int(headers["X-Nepal-Wal-Size"]):
            break
    return b"".join(chunks)


def single_node_oracle(tmp_path, journal: bytes) -> NepalDB:
    """A fresh single-node database holding exactly *journal*."""
    db = NepalDB(data_dir=str(tmp_path / "oracle"))
    durable = db.durable_store()
    durable.begin_replication("oracle rebuild")
    durable.replication_apply(journal)
    durable.end_replication()
    return db


class Workload:
    """Churn writes through the cluster client; remember what was acked."""

    def __init__(self, client: ClusterClient, prefix: str):
        self.client = client
        self.prefix = prefix
        self.acked: list[tuple[int, str]] = []  # (uid, name)
        self.rejected = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        index = 0
        while not self._stop.is_set():
            name = f"{self.prefix}-{index}"
            try:
                uid = self.client.insert_node("VM", {"name": name})
            except NoPrimaryError:
                self.rejected += 1
            else:
                self.acked.append((uid, name))
            index += 1
            time.sleep(0.005)

    def start(self) -> "Workload":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=30)


@pytest.mark.parametrize("warmup_writes", [5, 40])
def test_sigkill_failover_preserves_every_acknowledged_write(
    tmp_path, warmup_writes
):
    label = f"sigkill-after-{warmup_writes}"
    cluster = ReplicaSet(tmp_path / "cluster", replicas=2)
    report: dict = {"scenario": label}
    try:
        cluster.start()
        client = cluster_client(cluster)

        # Warm-up phase: synchronous acknowledged writes.
        acked: list[tuple[int, str]] = []
        for i in range(warmup_writes):
            uid = client.insert_node("VM", {"name": f"warm-{i}"})
            acked.append((uid, f"warm-{i}"))

        # Churn concurrently with the kill: some of these writes land
        # before the SIGKILL, some ride through the failover window.
        churn = Workload(client, "churn").start()
        time.sleep(0.2)
        cluster.kill_primary()
        survivor = cluster.failover()
        time.sleep(0.3)  # let churn hit the promoted primary
        churn.stop()
        acked.extend(churn.acked)
        report["acked"] = len(acked)
        report["rejected_during_window"] = churn.rejected
        report["survivor"] = survivor.name

        # A few final synchronous writes against the new primary.
        for i in range(5):
            uid = client.insert_node("VM", {"name": f"post-{i}"})
            acked.append((uid, f"post-{i}"))

        new_primary = survivor.client()
        status = new_primary.replication_status()
        report["promoted_status"] = status
        assert status["role"] == "primary"
        assert status["epoch"] == 1

        # --- commit-prefix oracle -----------------------------------
        journal = fetch_journal(new_primary)
        oracle = single_node_oracle(tmp_path, journal)
        try:
            known = set(oracle.store.known_uids())
            missing = [(uid, name) for uid, name in acked if uid not in known]
            report["missing"] = missing
            assert not missing, (
                f"{len(missing)} acknowledged writes absent after failover: "
                f"{missing[:5]}"
            )

            # --- byte-identical paper queries -----------------------
            from repro.server.app import _result_payload

            for query in CORPUS:
                local = _result_payload(oracle.query(query))
                remote = new_primary.query(query)
                assert (
                    json.dumps(local, sort_keys=True, default=str)
                    == json.dumps(remote, sort_keys=True, default=str)
                ), f"divergent result for {query!r}"

            # The surviving replica (repointed by failover) converges to
            # the same history.
            other = [n for n in cluster.replicas if n is not survivor]
            if other:
                deadline = time.monotonic() + 30
                target = new_primary.replication_status()["last_lsn"]
                while time.monotonic() < deadline:
                    peer = other[0].client().replication_status()
                    if peer["last_lsn"] >= target:
                        break
                    time.sleep(0.05)
                assert peer["last_lsn"] >= target, f"replica stuck: {peer}"
                peer_rows = other[0].client().query(CORPUS[0])
                assert json.dumps(peer_rows, sort_keys=True) == json.dumps(
                    new_primary.query(CORPUS[0]), sort_keys=True
                )
        finally:
            oracle.close()

        # --- revived stale primary is fenced ------------------------
        old = cluster.nodes[0]
        cluster.start_node(old)
        cluster.wait_ready(old)
        revived = old.client()
        assert revived.replication_status()["role"] == "primary"  # stale claim
        status_code, _, body = revived.raw_request(
            "POST", "/write",
            body=json.dumps({"op": "insert_node", "class": "VM",
                             "fields": {"name": "divergent"}}).encode(),
            headers={"X-Nepal-Epoch": str(client.epoch),
                     "Content-Type": "application/json"},
        )
        report["stale_write_status"] = status_code
        assert status_code == 409
        assert json.loads(body)["fenced_by"] == client.epoch
        assert revived.replication_status()["role"] == "fenced"
    finally:
        report.setdefault("statuses", {})
        try:
            report["statuses"] = cluster.statuses()
        except Exception:
            pass
        dump_report(report, label)
        cluster.stop()


def test_failover_loses_nothing_when_replicas_lag_unevenly(tmp_path):
    """The deterministic rule — promote the highest-LSN replica — is what
    makes 'every acknowledged write survives' hold.  Force uneven lag by
    SIGSTOP-ing one replica during the write burst, then verify the
    harness picks the caught-up one."""
    import signal

    label = "uneven-lag"
    cluster = ReplicaSet(tmp_path / "cluster", replicas=2)
    report: dict = {"scenario": label}
    try:
        cluster.start()
        client = cluster_client(cluster)
        laggard = cluster.nodes[2]
        os.kill(laggard.process.pid, signal.SIGSTOP)
        try:
            acked = []
            for i in range(20):
                uid = client.insert_node("VM", {"name": f"v{i}"})
                acked.append(uid)
            # Give the healthy replica time to stream the burst.
            healthy = cluster.nodes[1]
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                status = healthy.client().replication_status()
                if status["last_lsn"] >= 20:
                    break
                time.sleep(0.05)
            cluster.kill_primary()
        finally:
            os.kill(laggard.process.pid, signal.SIGCONT)
        survivor = cluster.failover()
        report["survivor"] = survivor.name
        assert survivor is healthy, (
            f"promoted {survivor.name}, expected the caught-up replica"
        )
        journal = fetch_journal(survivor.client())
        oracle = single_node_oracle(tmp_path, journal)
        try:
            known = set(oracle.store.known_uids())
            assert all(uid in known for uid in acked)
            report["digest_records"] = len(journal)
        finally:
            oracle.close()
        # The formerly-stopped laggard catches back up from the survivor.
        deadline = time.monotonic() + 30
        target = survivor.client().replication_status()["last_lsn"]
        while time.monotonic() < deadline:
            status = laggard.client().replication_status()
            if status["last_lsn"] >= target:
                break
            time.sleep(0.05)
        report["laggard_final"] = status
        assert status["last_lsn"] >= target, f"laggard stuck: {status}"
    finally:
        try:
            report["statuses"] = cluster.statuses()
        except Exception:
            pass
        dump_report(report, label)
        cluster.stop()


def test_replayed_journal_digest_matches_across_all_nodes(tmp_path):
    """After a quiet failover (no concurrent churn) every node's journal
    replays to the same history digest — the strongest equality we can
    claim over the public protocol."""
    label = "digest-equality"
    cluster = ReplicaSet(tmp_path / "cluster", replicas=2)
    try:
        cluster.start()
        client = cluster_client(cluster)
        for i in range(15):
            client.insert_node("VM", {"name": f"v{i}"})
        # Wait for full convergence.
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            statuses = cluster.statuses()
            lsns = {s["last_lsn"] for s in statuses.values()}
            if len(statuses) == 3 and len(lsns) == 1:
                break
            time.sleep(0.05)
        assert len(lsns) == 1, f"never converged: {statuses}"
        digests = set()
        for index, node in enumerate(cluster.nodes):
            journal = fetch_journal(node.client())
            oracle = single_node_oracle(tmp_path / f"n{index}", journal)
            digests.add(history_digest(oracle.store.inner))
            oracle.close()
        assert len(digests) == 1, "nodes replay to divergent histories"
    finally:
        dump_report({"scenario": label}, label)
        cluster.stop()
