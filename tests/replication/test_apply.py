"""In-process log shipping: DurableStore's replication surface.

Ships real WAL bytes from one store to another through the same
``read_wal`` → ``replication_apply`` path the HTTP puller uses, with no
network in between, and checks the replica comes out byte- and
history-identical under every awkward chunking the wire can produce.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import StorageError
from repro.schema.registry import Schema
from repro.storage.durable import WAL_FILE, DurableStore
from repro.storage.wal import history_digest, scan_wal
from repro.temporal.clock import TransactionClock

T0 = 1_000.0


def build_schema() -> Schema:
    schema = Schema("replication-test")
    schema.define_node("Box", fields={"status": "string", "size": "integer"})
    schema.define_edge("Link", fields={"weight": "integer"})
    return schema


def open_store(path, **kw) -> DurableStore:
    kw.setdefault("clock", TransactionClock(start=T0))
    return DurableStore.open(path, build_schema(), **kw)


def populate(store, n: int = 6) -> list[int]:
    uids = [store.insert_node("Box", {"status": "up", "size": i}) for i in range(n)]
    if n >= 4:
        store.insert_edge("Link", uids[0], uids[1], {"weight": 3})
        store.update_element(uids[2], {"status": "down"})
        store.delete_element(uids[3])
    return uids


def ship(primary: DurableStore, replica: DurableStore, chunk: int) -> None:
    """Pump the primary's whole journal into the replica, *chunk* bytes at
    a time, exactly as the puller would."""
    offset = replica.wal_bytes
    while True:
        data, committed = primary.read_wal(offset, limit=chunk)
        if not data:
            break
        replica.replication_apply(data)
        offset += len(data)
        if offset >= committed:
            break


@pytest.fixture
def pair(tmp_path):
    primary = open_store(tmp_path / "primary")
    replica = open_store(tmp_path / "replica")
    replica.begin_replication("test")
    yield primary, replica
    primary.close()
    replica.close()


class TestApply:
    @pytest.mark.parametrize("chunk", [1, 3, 7, 64, 1 << 16])
    def test_replica_history_identical_at_every_chunk_size(self, pair, chunk):
        primary, replica = pair
        populate(primary)
        ship(primary, replica, chunk)
        assert history_digest(replica.inner) == history_digest(primary.inner)
        assert replica.last_lsn == primary.last_lsn

    def test_replica_wal_is_byte_identical_prefix(self, pair, tmp_path):
        primary, replica = pair
        populate(primary)
        ship(primary, replica, 11)
        primary_wal = (tmp_path / "primary" / WAL_FILE).read_bytes()
        replica_wal = (tmp_path / "replica" / WAL_FILE).read_bytes()
        assert primary_wal == replica_wal

    def test_same_uids_allocated(self, pair):
        primary, replica = pair
        populate(primary)
        ship(primary, replica, 5)
        fresh_p = primary.insert_node("Box", {"status": "next"})
        # The replica's uid counter advanced identically, so a promoted
        # replica hands out the same uid the primary would have.
        replica.end_replication()
        fresh_r = replica.insert_node("Box", {"status": "next"})
        assert fresh_r == fresh_p

    def test_torn_frame_held_pending_across_chunks(self, pair):
        primary, replica = pair
        populate(primary, n=2)
        data, _ = primary.read_wal(0)
        cut = len(data) - 4
        result = replica.replication_apply(data[:cut])
        assert result.pending_bytes > 0
        before = result.applied
        result = replica.replication_apply(data[cut:])
        assert result.pending_bytes == 0
        assert result.applied >= 1
        assert replica.last_lsn == primary.last_lsn
        assert before + result.applied == len(scan_wal_records(primary))

    def test_bulk_batch_applies_atomically(self, pair):
        primary, replica = pair
        with primary.bulk():
            a = primary.insert_node("Box", {"status": "a"})
            b = primary.insert_node("Box", {"status": "b"})
            primary.insert_edge("Link", a, b, {"weight": 1})
        data, _ = primary.read_wal(0)
        # Feed everything except the trailing bulk_commit frame: the batch
        # must stay open (nothing visible yet at the store level is an
        # implementation detail, but the result must say open_batch).
        result = replica.replication_apply(data[:-20])
        assert result.open_batch or result.pending_bytes > 0
        result = replica.replication_apply(data[-20:])
        assert not result.open_batch
        assert result.pending_bytes == 0
        assert history_digest(replica.inner) == history_digest(primary.inner)

    def test_idempotent_reapply_skips_old_lsns(self, pair):
        primary, replica = pair
        populate(primary, n=3)
        data, _ = primary.read_wal(0)
        replica.replication_apply(data)
        first_digest = history_digest(replica.inner)
        # The puller re-fetches from its offset after a failure; feeding the
        # same bytes again must be a no-op, not a double-apply.  (Restart
        # the byte-stream bookkeeping to simulate a reconnect from 0.)
        replica.end_replication()
        replica.begin_replication("reconnect")
        result = replica.replication_apply(data)
        assert result.applied == 0
        assert result.skipped > 0
        assert history_digest(replica.inner) == first_digest

    def test_read_wal_out_of_range_offset_raises(self, pair):
        primary, _ = pair
        populate(primary, n=1)
        _, committed = primary.read_wal(0)
        with pytest.raises(StorageError):
            primary.read_wal(committed + 1)

    def test_end_replication_rolls_back_torn_residue(self, pair, tmp_path):
        """Promotion mid-chunk: a half-shipped frame must not survive into
        the new primary's journal."""
        primary, replica = pair
        populate(primary, n=3)
        data, _ = primary.read_wal(0)
        replica.replication_apply(data[:-6])  # torn tail buffered + journaled
        replica.end_replication()
        scan = scan_wal(tmp_path / "replica" / WAL_FILE)
        assert scan.torn_bytes == 0
        # Every journaled record is a complete, applied one.
        assert scan.records[-1].lsn == replica.last_lsn
        # And the store accepts writes again.
        replica.insert_node("Box", {"status": "promoted"})


class TestSnapshotBootstrap:
    def test_install_snapshot_matches_source(self, tmp_path):
        primary = open_store(tmp_path / "primary")
        populate(primary)
        primary.checkpoint()
        data, last_lsn, epoch = primary.snapshot_stream()
        replica = open_store(tmp_path / "replica")
        applied_records = replica.install_snapshot(data)
        assert applied_records > 0
        assert replica.last_lsn == last_lsn
        assert epoch == 0
        assert history_digest(replica.inner) == history_digest(primary.inner)
        primary.close()
        replica.close()

    def test_install_snapshot_refuses_non_empty_store(self, tmp_path):
        primary = open_store(tmp_path / "primary")
        populate(primary)
        primary.checkpoint()
        data, _, _ = primary.snapshot_stream()
        replica = open_store(tmp_path / "replica")
        replica.insert_node("Box", {"status": "local"})
        with pytest.raises(StorageError):
            replica.install_snapshot(data)
        primary.close()
        replica.close()


class TestEpochFence:
    def test_stamp_epoch_persists_across_reopen(self, tmp_path):
        store = open_store(tmp_path / "node")
        store.insert_node("Box", {"status": "up"})
        store.stamp_epoch(2)
        assert store.epoch == 2
        store.close()
        reopened = open_store(tmp_path / "node")
        assert reopened.epoch == 2
        reopened.close()

    def test_epoch_ships_with_the_stream(self, tmp_path):
        primary = open_store(tmp_path / "primary")
        primary.insert_node("Box", {"status": "up"})
        primary.stamp_epoch(1)
        primary.insert_node("Box", {"status": "later"})
        replica = open_store(tmp_path / "replica")
        replica.begin_replication("test")
        ship(primary, replica, 9)
        assert replica.epoch == 1
        assert history_digest(replica.inner) == history_digest(primary.inner)
        primary.close()
        replica.close()


def scan_wal_records(store: DurableStore):
    return scan_wal(os.path.join(store.data_dir, WAL_FILE)).records
