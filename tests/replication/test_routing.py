"""ClusterClient: discovery, lag-aware read routing, write failover."""

from __future__ import annotations

import pytest

from repro.core.resilience import ResiliencePolicy
from repro.replication import ClusterClient, NoPrimaryError
from repro.server.client import ServerError
from tests.concurrency.conftest import small_topology
from tests.replication.conftest import wait_caught_up

QUERY = "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()"


def fast_policy(**kw) -> ResiliencePolicy:
    kw.setdefault("max_attempts", 6)
    kw.setdefault("base_delay", 0.01)
    kw.setdefault("max_delay", 0.05)
    kw.setdefault("seed", 0)
    return ResiliencePolicy(**kw)


@pytest.fixture
def cluster(primary, replica_of):
    """Primary + two caught-up replicas + a ClusterClient over all three."""
    primary_server, primary_client = primary
    small_topology(primary_server.db)
    replica_a, _ = replica_of(primary_server, name="ra")
    replica_b, _ = replica_of(primary_server, name="rb")
    wait_caught_up(replica_a)
    wait_caught_up(replica_b)
    servers = [primary_server, replica_a, replica_b]
    client = ClusterClient(
        ["%s:%d" % s.address for s in servers], policy=fast_policy()
    )
    return servers, client


class TestDiscovery:
    def test_elects_the_primary_and_ranks_replicas(self, cluster):
        servers, client = cluster
        client.discover()
        assert client.primary == "%s:%d" % servers[0].address
        assert sorted(client.replicas) == sorted(
            "%s:%d" % s.address for s in servers[1:]
        )

    def test_statuses_reports_every_live_node(self, cluster):
        servers, client = cluster
        statuses = client.statuses()
        assert len(statuses) == 3
        roles = sorted(s["role"] for s in statuses.values())
        assert roles == ["primary", "replica", "replica"]


class TestRouting:
    def test_reads_prefer_fresh_replicas(self, cluster):
        servers, client = cluster
        client.discover()
        candidates = client._read_candidates()
        # Both replicas are caught up, so they outrank the primary.
        assert candidates[-1] == "%s:%d" % servers[0].address
        assert len(candidates) == 3
        rows = client.query(QUERY)["rows"]
        assert len(rows) == 12

    def test_writes_go_to_the_primary(self, cluster):
        servers, client = cluster
        uid = client.insert_node("VM", {"name": "routed"})
        assert isinstance(uid, int)
        # The write landed on the primary, not a replica.
        assert uid in servers[0].db.store.known_uids()

    def test_stale_replicas_rank_after_the_primary(self, cluster):
        servers, client = cluster
        client.discover()
        # Force one replica to look arbitrarily stale.
        address_a = "%s:%d" % servers[1].address
        client._replicas = [(address_a, 10_000), (client._replicas[1][0], 0)]
        candidates = client._read_candidates()
        assert candidates[-1] == address_a  # over threshold: last resort
        assert candidates[0] != address_a


class TestFailover:
    def test_write_fails_over_after_promotion(self, cluster):
        servers, client = cluster
        client.insert_node("VM", {"name": "before"})
        # Primary dies; a replica is promoted out-of-band (the harness's
        # job) and the same client keeps writing with no reconfiguration.
        servers[0].graceful_stop()
        promoted = servers[1]
        promoted.replication.promote()
        uid = client.insert_node("VM", {"name": "after"})
        assert isinstance(uid, int)
        assert client.primary == "%s:%d" % promoted.address
        assert client.epoch == 1

    def test_no_primary_raises_after_budget(self, cluster):
        servers, client = cluster
        servers[0].graceful_stop()  # only replicas left; nobody promotes
        with pytest.raises(NoPrimaryError):
            client.write("POST", "/write",
                         {"op": "insert_node", "class": "VM", "fields": {}})

    def test_reads_survive_primary_death(self, cluster):
        servers, client = cluster
        client.discover()
        servers[0].graceful_stop()
        rows = client.query(QUERY)["rows"]
        assert len(rows) == 12

    def test_bad_request_not_retried_across_nodes(self, cluster):
        _, client = cluster
        with pytest.raises(ServerError) as info:
            client.query("Retrieve From Nowhere Bad Syntax")
        assert info.value.status == 400
