"""The shipping wire format: FrameDecoder under arbitrary chunking.

The replication stream is the WAL byte-for-byte, so the decoder must
tolerate every chunk boundary the network can produce — including a frame
whose length header itself is split across two chunks (the "torn tail"
of one shipping chunk completed by the next).
"""

from __future__ import annotations

import pytest

from repro.storage.wal import (
    FrameDecoder,
    WalCorruptionError,
    WalRecord,
    WalWriter,
    encode_frame,
    scan_wal,
)


def records(n: int) -> list[WalRecord]:
    return [
        WalRecord(lsn=i + 1, op="insert_node", ts=100.0 + i, uid=i + 1,
                  cls="VM", fields={"name": f"vm{i}"}, dv=i)
        for i in range(n)
    ]


def stream_bytes(recs: list[WalRecord]) -> bytes:
    return b"".join(encode_frame(r) for r in recs)


class TestFrameDecoder:
    def test_whole_stream_at_once(self):
        recs = records(5)
        decoder = FrameDecoder()
        out = decoder.feed(stream_bytes(recs))
        assert [r.lsn for r, _ in out] == [1, 2, 3, 4, 5]
        assert decoder.pending == 0

    def test_end_offsets_are_frame_boundaries(self):
        recs = records(3)
        data = stream_bytes(recs)
        out = FrameDecoder().feed(data)
        # The last end-offset is the full stream; each offset lands
        # exactly on a frame boundary, so resuming a fresh decoder from
        # any of them yields exactly the remaining records.
        assert out[-1][1] == len(data)
        for index, (_, end) in enumerate(out):
            tail = [r.lsn for r, _ in FrameDecoder().feed(data[end:])]
            assert tail == [r.lsn for r in recs[index + 1:]]

    def test_byte_at_a_time(self):
        recs = records(4)
        data = stream_bytes(recs)
        decoder = FrameDecoder()
        seen = []
        for i in range(len(data)):
            seen.extend(r.lsn for r, _ in decoder.feed(data[i:i + 1]))
        assert seen == [1, 2, 3, 4]
        assert decoder.pending == 0

    @pytest.mark.parametrize("chunk", [1, 2, 3, 5, 7, 11, 64])
    def test_every_chunk_size_decodes_identically(self, chunk):
        recs = records(6)
        data = stream_bytes(recs)
        decoder = FrameDecoder()
        seen = []
        for i in range(0, len(data), chunk):
            seen.extend(r for r, _ in decoder.feed(data[i:i + chunk]))
        assert [r.lsn for r in seen] == [r.lsn for r in recs]
        assert [r.fields for r in seen] == [dict(r.fields) for r in recs]

    def test_torn_tail_spanning_chunk_boundary(self):
        """A frame split mid-payload across two shipping chunks: the first
        chunk ends with a torn tail that the decoder holds as pending, and
        the next chunk completes it."""
        recs = records(3)
        data = stream_bytes(recs)
        # Cut inside the *last* frame's payload.
        cut = len(data) - 5
        decoder = FrameDecoder()
        first = decoder.feed(data[:cut])
        assert [r.lsn for r, _ in first] == [1, 2]
        assert decoder.pending > 0
        second = decoder.feed(data[cut:])
        assert [r.lsn for r, _ in second] == [3]
        assert decoder.pending == 0

    def test_torn_header_spanning_chunk_boundary(self):
        """Even the 8-byte length+crc header can straddle chunks."""
        recs = records(2)
        data = stream_bytes(recs)
        frame_one = encode_frame(recs[0])
        cut = len(frame_one) + 3  # 3 bytes into the second frame's header
        decoder = FrameDecoder()
        assert [r.lsn for r, _ in decoder.feed(data[:cut])] == [1]
        assert [r.lsn for r, _ in decoder.feed(data[cut:])] == [2]

    def test_mid_stream_corruption_raises(self):
        recs = records(3)
        data = bytearray(stream_bytes(recs))
        # Flip a byte inside the second frame's payload.
        offset = len(encode_frame(recs[0])) + 10
        data[offset] ^= 0xFF
        decoder = FrameDecoder()
        with pytest.raises(WalCorruptionError):
            decoder.feed(bytes(data))


class TestAppendRaw:
    def test_shipped_bytes_replayable_by_scan(self, tmp_path):
        """Appending shipped frames verbatim yields a WAL that the normal
        recovery scanner reads back identically — the replica journal is a
        byte-identical prefix of the primary's."""
        recs = records(5)
        data = stream_bytes(recs)
        path = tmp_path / "replica.wal"
        writer = WalWriter(path)
        # Ship in awkward chunks; append each chunk verbatim.
        for i in range(0, len(data), 7):
            writer.append_raw(data[i:i + 7])
        writer.sync()
        writer.close()
        scan = scan_wal(path)
        assert [r.lsn for r in scan.records] == [1, 2, 3, 4, 5]
        assert scan.torn_bytes == 0
        assert path.read_bytes() == data
