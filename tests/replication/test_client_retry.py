"""NepalClient honours 503 Retry-After — verified on a fake clock."""

from __future__ import annotations

import json

import pytest

from repro.server.client import NepalClient, ServerError, _parse_retry_after


class FakeTransport:
    """Scripted raw_request replacement: pops one response per call."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.calls = 0

    def __call__(self, method, path, body=None, headers=None):
        self.calls += 1
        status, resp_headers, payload = self.responses.pop(0)
        return status, resp_headers, json.dumps(payload).encode()


def make_client(responses, **kw):
    sleeps: list[float] = []
    kw.setdefault("retry_503", 2)
    client = NepalClient("127.0.0.1", 1, sleep=sleeps.append, **kw)
    transport = FakeTransport(responses)
    client.raw_request = transport  # type: ignore[method-assign]
    return client, transport, sleeps


class TestRetryAfter:
    def test_sleeps_the_advertised_interval_then_retries(self):
        client, transport, sleeps = make_client([
            (503, {"Retry-After": "0.25"}, {"error": "saturated"}),
            (200, {}, {"ok": True}),
        ])
        assert client.request("POST", "/query", {"query": "q"}) == {"ok": True}
        assert transport.calls == 2
        assert sleeps == [0.25]

    def test_retries_up_to_the_budget_then_raises(self):
        client, transport, sleeps = make_client([
            (503, {"Retry-After": "1"}, {"error": "busy"}),
            (503, {"Retry-After": "2"}, {"error": "busy"}),
            (503, {"Retry-After": "3"}, {"error": "busy"}),
        ], retry_503=2)
        with pytest.raises(ServerError) as info:
            client.request("GET", "/health")
        assert info.value.status == 503
        assert info.value.retry_after == 3.0
        assert transport.calls == 3
        assert sleeps == [1.0, 2.0]

    def test_hostile_retry_after_capped(self):
        client, _, sleeps = make_client([
            (503, {"Retry-After": "86400"}, {"error": "busy"}),
            (200, {}, {"ok": True}),
        ], max_retry_after=5.0)
        client.request("GET", "/health")
        assert sleeps == [5.0]

    def test_503_without_retry_after_not_retried(self):
        client, transport, sleeps = make_client([
            (503, {}, {"error": "no hint"}),
        ])
        with pytest.raises(ServerError):
            client.request("GET", "/health")
        assert transport.calls == 1
        assert sleeps == []

    def test_retry_budget_zero_surfaces_immediately(self):
        client, transport, sleeps = make_client([
            (503, {"Retry-After": "1"}, {"error": "busy"}),
        ], retry_503=0)
        with pytest.raises(ServerError):
            client.request("GET", "/health")
        assert transport.calls == 1
        assert sleeps == []

    def test_non_503_errors_never_sleep(self):
        client, _, sleeps = make_client([
            (409, {"Retry-After": "1"}, {"error": "fenced"}),
        ])
        with pytest.raises(ServerError) as info:
            client.request("POST", "/write", {"op": "insert_node"})
        assert info.value.status == 409
        assert sleeps == []

    def test_error_carries_headers_for_cluster_routing(self):
        client, _, _ = make_client([
            (307, {"Location": "http://10.0.0.1:7687/write",
                   "X-Nepal-Epoch": "3"}, {"error": "not primary"}),
        ])
        with pytest.raises(ServerError) as info:
            client.request("POST", "/write", {"op": "insert_node"})
        assert info.value.headers["Location"] == "http://10.0.0.1:7687/write"
        assert info.value.headers["X-Nepal-Epoch"] == "3"


class TestParseRetryAfter:
    @pytest.mark.parametrize("value,expected", [
        (None, None),
        ("2", 2.0),
        ("0.5", 0.5),
        ("-3", 0.0),
        ("soon", None),                      # HTTP-date form: ignored
        ("Wed, 21 Oct 2026 07:28:00 GMT", None),
    ])
    def test_delta_seconds_only(self, value, expected):
        assert _parse_retry_after(value) == expected
