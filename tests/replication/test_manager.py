"""ReplicationManager: role transitions, epoch fencing, readiness.

Exercises the state machine without any HTTP — the puller never connects
(the primary URL points at a closed port), which is fine: transitions and
fencing are local decisions.
"""

from __future__ import annotations

import pytest

from repro.core.database import NepalDB
from repro.errors import FencedError, NotPrimaryError, ReplicationError
from repro.replication import ROLE_FENCED, ROLE_PRIMARY, ROLE_REPLICA, ReplicationManager

DEAD_PRIMARY = "127.0.0.1:1"  # reserved port: connections always refused


@pytest.fixture
def db(tmp_path):
    database = NepalDB(data_dir=str(tmp_path / "node"))
    yield database
    database.close()


@pytest.fixture
def manager(db):
    mgr = ReplicationManager(db, node_name="n1")
    yield mgr
    mgr.shutdown()


class TestRoles:
    def test_starts_as_primary(self, manager):
        assert manager.role == ROLE_PRIMARY
        assert manager.epoch == 0
        status = manager.status()
        assert status["role"] == ROLE_PRIMARY
        assert status["durable"] is True
        manager.check_writable(None)  # does not raise

    def test_become_replica_rejects_writes(self, db, manager):
        manager.become_replica(DEAD_PRIMARY)
        assert manager.role == ROLE_REPLICA
        with pytest.raises(NotPrimaryError) as info:
            manager.check_writable(None)
        assert info.value.primary == DEAD_PRIMARY
        with pytest.raises(Exception):
            db.insert_node("VM", {"name": "nope"})  # store is read-only

    def test_become_replica_twice_refused(self, manager):
        manager.become_replica(DEAD_PRIMARY)
        with pytest.raises(ReplicationError):
            manager.become_replica(DEAD_PRIMARY)

    def test_promote_bumps_epoch_and_reopens_writes(self, db, manager):
        manager.become_replica(DEAD_PRIMARY)
        status = manager.promote()
        assert status["role"] == ROLE_PRIMARY
        assert status["epoch"] == 1
        manager.check_writable(None)
        uid = db.insert_node("VM", {"name": "after-promote"})
        assert isinstance(uid, int)

    def test_promote_is_idempotent_on_primary(self, manager):
        first = manager.promote()
        second = manager.promote()
        assert first["epoch"] == second["epoch"] == 0
        assert second["role"] == ROLE_PRIMARY

    def test_repoint_requires_replica_role(self, manager):
        with pytest.raises(ReplicationError):
            manager.repoint(DEAD_PRIMARY)


class TestFencing:
    def test_observe_higher_epoch_fences(self, manager):
        with pytest.raises(FencedError):
            manager.observe_epoch(3)
        assert manager.role == ROLE_FENCED
        assert manager.status()["fenced_by"] == 3

    def test_observe_equal_or_lower_epoch_is_noop(self, manager):
        manager.observe_epoch(0)
        assert manager.role == ROLE_PRIMARY

    def test_fenced_node_refuses_writes_and_promotion(self, db, manager):
        manager.fence(5)
        with pytest.raises(FencedError):
            manager.check_writable(None)
        with pytest.raises(FencedError):
            manager.promote()
        with pytest.raises(Exception):
            db.insert_node("VM", {"name": "nope"})

    def test_fence_keeps_highest_epoch(self, manager):
        manager.fence(2)
        manager.fence(4)
        manager.fence(3)
        assert manager.status()["fenced_by"] == 4

    def test_write_with_stamped_epoch_fences_stale_primary(self, manager):
        """The acceptance scenario in miniature: a client that saw the new
        primary's epoch writes to the revived old one."""
        assert manager.role == ROLE_PRIMARY
        with pytest.raises(FencedError):
            manager.check_writable(2)
        assert manager.role == ROLE_FENCED


class TestReadiness:
    def test_primary_is_ready(self, manager):
        ready, detail = manager.readiness()
        assert ready is True
        assert detail["role"] == ROLE_PRIMARY

    def test_fenced_is_not_ready(self, manager):
        manager.fence(1)
        ready, detail = manager.readiness()
        assert ready is False

    def test_disconnected_replica_is_not_ready(self, manager):
        manager.become_replica(DEAD_PRIMARY)
        ready, detail = manager.readiness()
        assert ready is False
        assert detail["role"] == ROLE_REPLICA


class TestMemoryBackend:
    def test_replication_requires_durable_store(self):
        db = NepalDB()  # memory backend, no WAL
        manager = ReplicationManager(db)
        with pytest.raises(ReplicationError):
            manager.become_replica(DEAD_PRIMARY)
        assert manager.status()["durable"] is False
        db.close()
