"""Two real servers wired over HTTP: streaming, lag, redirects, fencing."""

from __future__ import annotations

import json

import pytest

from repro.server.client import ServerError
from tests.concurrency.conftest import small_topology
from tests.replication.conftest import wait_caught_up

CORPUS = [
    "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()",
    "Retrieve P From PATHS P Where P MATCHES VM(status='Green')",
    "Retrieve P From PATHS P Where P MATCHES Host()",
]


class TestStreaming:
    def test_replica_serves_byte_identical_paper_queries(self, primary, replica_of):
        primary_server, primary_client = primary
        small_topology(primary_server.db)
        replica_server, replica_client = replica_of(primary_server)
        wait_caught_up(replica_server)
        for query in CORPUS:
            p = primary_client.query(query)
            r = replica_client.query(query)
            assert json.dumps(p, sort_keys=True) == json.dumps(r, sort_keys=True)

    def test_stream_tracks_live_writes_and_lag_gauges(self, primary, replica_of):
        primary_server, primary_client = primary
        replica_server, replica_client = replica_of(primary_server)
        wait_caught_up(replica_server)
        for i in range(10):
            primary_client.insert_node("VM", {"name": f"live{i}"})
        wait_caught_up(replica_server)
        status = replica_client.replication_status()
        assert status["role"] == "replica"
        assert status["last_lsn"] == primary_client.replication_status()["last_lsn"]
        assert status["replication"]["state"] == "streaming"
        assert status["replication"]["lag_records"] == 0
        # Gauges are published into the metrics registry too.
        gauges = replica_server.db.metrics.gauges("replication.")
        assert gauges["replication.lag_records"] == 0.0
        assert gauges["replication.lag_seconds"] == 0.0

    def test_bootstrap_from_snapshot_after_checkpoint(self, primary, replica_of):
        """A replica joining after the primary checkpointed (journal
        truncated) bootstraps from the snapshot stream."""
        primary_server, primary_client = primary
        small_topology(primary_server.db)
        primary_server.db.durable_store().checkpoint()
        primary_client.insert_node("VM", {"name": "post-checkpoint"})
        replica_server, replica_client = replica_of(primary_server)
        wait_caught_up(replica_server)
        query = CORPUS[0]
        assert primary_client.query(query) == replica_client.query(query)
        assert (
            replica_client.replication_status()["last_lsn"]
            == primary_client.replication_status()["last_lsn"]
        )


class TestWriteRouting:
    def test_replica_write_redirects_to_primary(self, primary, replica_of):
        primary_server, _ = primary
        replica_server, replica_client = replica_of(primary_server)
        wait_caught_up(replica_server)
        with pytest.raises(ServerError) as info:
            replica_client.insert_node("VM", {"name": "nope"})
        assert info.value.status == 307
        location = info.value.headers.get("Location")
        assert location == "http://%s:%d/write" % primary_server.address

    def test_every_response_carries_the_epoch_header(self, primary):
        _, client = primary
        status, headers, _ = client.raw_request("GET", "/healthz")
        assert status == 200
        assert headers.get("X-Nepal-Epoch") == "0"


class TestFailoverOverHttp:
    def test_promote_then_fence_stale_primary(self, primary, replica_of):
        primary_server, primary_client = primary
        small_topology(primary_server.db)
        replica_server, replica_client = replica_of(primary_server)
        wait_caught_up(replica_server)

        promoted = replica_client.promote()
        assert promoted["role"] == "primary"
        assert promoted["epoch"] == 1

        # The new primary accepts writes.
        replica_client.insert_node("VM", {"name": "post-promote"})

        # A client that saw epoch 1 writes to the stale primary: 409, and
        # the stale primary fences itself.
        status, _, body = primary_client.raw_request(
            "POST", "/write",
            body=json.dumps({"op": "insert_node", "class": "VM",
                             "fields": {"name": "divergent"}}).encode(),
            headers={"X-Nepal-Epoch": "1", "Content-Type": "application/json"},
        )
        assert status == 409
        assert json.loads(body)["fenced_by"] == 1
        assert primary_client.replication_status()["role"] == "fenced"
        # Fenced nodes still serve reads...
        primary_client.query(CORPUS[0])
        # ...but refuse writes even without the epoch header.
        with pytest.raises(ServerError) as info:
            primary_client.insert_node("VM", {"name": "still-nope"})
        assert info.value.status == 409

    def test_promote_via_http_is_idempotent(self, primary, replica_of):
        primary_server, _ = primary
        replica_server, replica_client = replica_of(primary_server)
        wait_caught_up(replica_server)
        first = replica_client.promote()
        second = replica_client.promote()
        assert first["epoch"] == second["epoch"] == 1


class TestProbes:
    def test_healthz_always_alive(self, primary, replica_of):
        primary_server, primary_client = primary
        assert primary_client.healthz() == {"status": "alive"}
        replica_server, replica_client = replica_of(primary_server)
        assert replica_client.healthz() == {"status": "alive"}

    def test_readyz_reflects_role_and_lag(self, primary, replica_of):
        primary_server, primary_client = primary
        payload = primary_client.readyz()
        assert payload["ready"] is True
        replica_server, replica_client = replica_of(primary_server)
        wait_caught_up(replica_server)
        payload = replica_client.readyz()
        assert payload["ready"] is True
        assert payload["role"] == "replica"

    def test_readyz_503_when_stream_is_down(self, tmp_path):
        """A replica pointed at a dead primary is alive but not ready."""
        from repro.core.database import NepalDB
        from repro.server import NepalClient, NepalServer, ServerConfig

        db = NepalDB(data_dir=str(tmp_path / "lonely"))
        server = NepalServer(db, ServerConfig(port=0))
        server.start()
        try:
            server.replication.become_replica("127.0.0.1:1")
            client = NepalClient(*server.address, retry_503=0)
            assert client.healthz() == {"status": "alive"}
            with pytest.raises(ServerError) as info:
                client.readyz()
            assert info.value.status == 503
        finally:
            server.graceful_stop()
