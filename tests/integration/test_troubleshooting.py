"""The §2.3.2 path-calculation scenarios: routes, induced paths, shared
fate, service footprints and history-based troubleshooting."""

import pytest

from repro import NepalDB
from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology
from repro.storage.base import TimeScope
from repro.temporal.clock import TransactionClock

T0 = 1_000_000.0


@pytest.fixture(scope="module")
def db():
    database = NepalDB(clock=TransactionClock(start=T0))
    params = TopologyParams(
        services=4, vms=120, virtual_networks=30, virtual_routers=10,
        racks=5, hosts_per_rack=4, spine_switches=3, routers=2,
        seed=20180610,
    )
    handles = VirtualizedServiceTopology(params).apply(database.store)
    return database, handles


class TestCalculatingRoutes:
    def test_all_paths_between_two_vms(self, db):
        database, handles = db
        vm_a = handles.vms[0]
        paths = database.find_paths(f"VM(id={vm_a})->[ConnectedTo()]{{1,4}}->VM()")
        assert paths
        # Closed under composition: results are pathways we can reason over.
        assert all(p.source.uid == vm_a for p in paths)

    def test_paths_constrained_through_element(self, db):
        # "require the paths to pass through a set of routers".
        database, handles = db
        host = handles.hosts[0]
        via_switch = database.find_paths(
            f"Host(id={host})->ServerSwitch()->Switch()->[ConnectedTo()]{{1,2}}->Host()"
        )
        for pathway in via_switch:
            kinds = [e.cls.name for e in pathway.edges]
            assert kinds[0] == "ServerSwitch"


class TestSharedFate:
    def test_server_failure_blast_radius(self, db):
        """'To determine all the VMs, and VNFs affected by the failure of a
        physical server, one computes the vertical paths from that server'."""
        database, handles = db
        host = handles.vm_host[handles.vfc_vm[handles.vnf_vfcs[handles.vnfs[0]][0]]]
        affected = database.query(
            f"Select source(P) From PATHS P "
            f"Where P MATCHES VNF()->[Vertical()]{{1,6}}->Host(id={host})"
        )
        expected = {
            vnf
            for vnf, vfcs in handles.vnf_vfcs.items()
            if any(handles.vm_host[handles.vfc_vm[vfc]] == host for vfc in vfcs)
        }
        assert {row.values[0].uid for row in affected} == expected

    def test_vnf_footprint(self, db):
        """'the footprint of a VNF at the Virtualization layer (all VMs
        implementing that VNF), and Physical layer'."""
        database, handles = db
        vnf = handles.vnfs[0]
        vms = database.query(
            f"Select target(P) From PATHS P "
            f"Where P MATCHES VNF(id={vnf})->VFC()->[HostedOn()]{{1,1}}->Container()"
        )
        expected_vms = {handles.vfc_vm[vfc] for vfc in handles.vnf_vfcs[vnf]}
        assert {row.values[0].uid for row in vms} == expected_vms
        hosts = database.query(
            f"Select target(P) From PATHS P "
            f"Where P MATCHES VNF(id={vnf})->[Vertical()]{{1,6}}->Host()"
        )
        expected_hosts = {handles.vm_host[vm] for vm in expected_vms}
        assert {row.values[0].uid for row in hosts} == expected_hosts


class TestInducedPaths:
    def test_logical_flow_induces_physical_path(self, db):
        """A service flow VFC->VFC induces a physical path between the
        hosts executing the two VFCs (§2.3.2 'Calculating induced paths')."""
        database, handles = db
        flows = database.query(
            "Retrieve F From PATHS F Where F MATCHES VFC()->FlowsTo()->VFC()"
        )
        assert len(flows) >= 1
        flow = flows[0].pathway()
        src_vfc, dst_vfc = flow.source.uid, flow.target.uid
        induced = database.query(
            f"Retrieve Phys From PATHS D1, PATHS D2, PATHS Phys "
            f"Where D1 MATCHES VFC(id={src_vfc})->[Vertical()]{{1,4}}->Host() "
            f"And D2 MATCHES VFC(id={dst_vfc})->[Vertical()]{{1,4}}->Host() "
            f"And Phys MATCHES [ConnectedTo()]{{1,6}} "
            f"And source(Phys)=target(D1) And target(Phys)=target(D2)"
        )
        host_src = handles.vm_host[handles.vfc_vm[src_vfc]]
        host_dst = handles.vm_host[handles.vfc_vm[dst_vfc]]
        if host_src != host_dst:
            assert len(induced) >= 1
            for row in induced:
                assert row.pathway("Phys").source.uid == host_src


class TestHistoryBasedTroubleshooting:
    def test_which_paths_flowed_through_element(self, db):
        """'Between timestamps t1 and t2, which network paths flowed
        through a given network element?'"""
        database, handles = db
        # Break and restore a ToR uplink to create history.
        tor_edge = None
        scope = TimeScope.current()
        for switch in handles.switches:
            for edge in database.store.out_edges(switch, scope):
                if edge.cls.name == "SwitchSwitch":
                    tor_edge = edge
                    break
            if tor_edge:
                break
        assert tor_edge is not None
        database.clock.set(T0 + 100)
        database.store.delete_element(tor_edge.uid)
        database.clock.set(T0 + 200)
        database.store.insert_edge(
            "SwitchSwitch", tor_edge.source_uid, tor_edge.target_uid, uid=tor_edge.uid
        )
        paths = database.find_paths(
            f"Switch(id={tor_edge.source_uid})->SwitchSwitch(id={tor_edge.uid})->Switch()",
            between=(T0, T0 + 1000),
        )
        assert len(paths) == 1
        validity = paths[0].validity
        # The outage splits the validity into two maximal ranges.
        assert len(validity.intervals) == 2
        assert validity.intervals[0].end == T0 + 100
        assert validity.intervals[1].start == T0 + 200

    def test_footprint_evolution_over_time(self, db):
        """'What was the physical and virtual footprint of a VNF, and how
        did it evolve over time?'"""
        database, handles = db
        vnf = handles.vnfs[2]
        vfc = handles.vnf_vfcs[vnf][0]
        vm = handles.vfc_vm[vfc]
        old_host = handles.vm_host[vm]
        new_host = next(h for h in handles.hosts if h != old_host)
        database.clock.set(T0 + 500)
        placement = [
            e for e in database.store.out_edges(vm, TimeScope.current())
            if e.cls.name == "OnServer"
        ][0]
        database.store.delete_element(placement.uid)
        database.store.insert_edge("OnServer", vm, new_host)

        rows = database.query(
            f"AT {T0 + 1} : {T0 + 1000} Select target(P) From PATHS P "
            f"Where P MATCHES VNF(id={vnf})->VFC(id={vfc})->VM()->Host()"
        )
        hosts_over_time = {row.values[0].uid for row in rows}
        assert {old_host, new_host} <= hosts_over_time
