"""A recovered durable store answers the paper-query corpus identically.

The differential oracle from the cross-backend harness, pointed at crash
recovery: the seeded virtualized-service topology is written through a
durable store, the process "dies" (the store is closed without
checkpointing, or checkpointed mid-way), and the reopened database must
produce exactly the normalized rows a never-persisted in-memory database
produces for every query in the corpus.
"""

import pytest

from repro.core.database import NepalDB
from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology
from repro.storage.wal import history_digest
from repro.temporal.clock import TransactionClock
from tests.storage.test_backend_equivalence import (
    PAPER_QUERY_CORPUS,
    T0,
    normalized_rows,
)

PARAMS = TopologyParams(
    services=2, vms=30, virtual_networks=8, virtual_routers=3,
    racks=2, hosts_per_rack=3, spine_switches=2, routers=2,
    seed=20180610,
)


@pytest.fixture(scope="module")
def recovered_matrix(tmp_path_factory):
    """A reference in-memory DB plus two recovered durable DBs."""
    reference = NepalDB(clock=TransactionClock(start=T0))
    VirtualizedServiceTopology(PARAMS).apply(reference.store)

    # Journal-only: the whole topology rides the WAL into recovery.
    wal_dir = tmp_path_factory.mktemp("wal-only") / "data"
    db = NepalDB(clock=TransactionClock(start=T0), data_dir=str(wal_dir))
    VirtualizedServiceTopology(PARAMS).apply(db.store)
    db.close()
    from_wal = NepalDB(clock=TransactionClock(start=T0), data_dir=str(wal_dir))

    # Checkpointed: baseline plus a journal tail.
    ckpt_dir = tmp_path_factory.mktemp("checkpointed") / "data"
    db = NepalDB(clock=TransactionClock(start=T0), data_dir=str(ckpt_dir))
    VirtualizedServiceTopology(PARAMS).apply(db.store)
    db.checkpoint()
    db.clock.advance(10)
    extra = db.store.insert_node("Firewall", {"name": "post-ckpt", "status": "Green"})
    db.store.delete_element(extra)  # journal tail: insert then delete
    db.close()
    from_checkpoint = NepalDB(clock=TransactionClock(start=T0), data_dir=str(ckpt_dir))

    # The tail's net effect is a closed validity interval, not nothing:
    # the reference must see the same history to stay a fair oracle.
    reference.clock.advance(10)
    mirror = reference.store.insert_node(
        "Firewall", {"name": "post-ckpt", "status": "Green"}, uid=extra
    )
    reference.store.delete_element(mirror)

    yield {
        "reference": reference,
        "from-wal": from_wal,
        "from-checkpoint": from_checkpoint,
    }
    from_wal.close()
    from_checkpoint.close()


def test_recovery_reports_are_clean(recovered_matrix):
    assert recovered_matrix["from-wal"].recovery_report.clean
    report = recovered_matrix["from-checkpoint"].recovery_report
    assert report.clean and report.checkpoint_loaded


def test_recovered_history_digests_match(recovered_matrix):
    expected = history_digest(recovered_matrix["reference"].store)
    assert history_digest(recovered_matrix["from-wal"].store) == expected
    assert history_digest(recovered_matrix["from-checkpoint"].store) == expected


@pytest.mark.parametrize("query", PAPER_QUERY_CORPUS)
def test_recovered_stores_answer_paper_queries_identically(recovered_matrix, query):
    expected = normalized_rows(recovered_matrix["reference"].query(query))
    for config in ("from-wal", "from-checkpoint"):
        actual = normalized_rows(recovered_matrix[config].query(query))
        assert actual == expected, config
