"""Time-travel differential suite over the paper-query corpus.

The churned virtualized-service topology is loaded into every backend
configuration (memory with temporal indexes, relational without, each
wrapped in a zero-fault chaos store), then the corpus runs under
historical scopes — timeslices before, during and after the churn window
plus a spanning range — and every configuration must produce identical
normalized rows.  The relational backend has no temporal index at all,
so agreement here is an end-to-end oracle for the indexed hot path; the
in-memory database additionally answers against its own brute-force
ablation and after a recovery round-trip through WAL + checkpoint.
"""

from __future__ import annotations

import pytest

from repro.core.database import NepalDB
from repro.inventory.churn import ChurnParams, ChurnSimulator
from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology
from repro.temporal.clock import TransactionClock
from tests.conftest import BACKEND_MATRIX, build_matrix_db
from tests.storage.test_backend_equivalence import normalized_rows

T0 = 1_000.0

PARAMS = TopologyParams(
    services=2, vms=30, virtual_networks=8, virtual_routers=3,
    racks=2, hosts_per_rack=3, spine_switches=2, routers=2,
    seed=20180610,
)

CHURN = ChurnParams(days=10, growth_ratio=0.15, seed=11)


def load_and_churn(db: NepalDB) -> None:
    handles = VirtualizedServiceTopology(PARAMS).apply(db.store)
    migratable = {vm: handles.hosts for vm in handles.vms}
    ChurnSimulator(db.store, CHURN).run(
        handles.all_nodes(), handles.all_edges(), migratable
    )
    db.executor().invalidate_statistics()


def corpus(t_mid: float, t_end: float) -> tuple[str, ...]:
    """Historical variants of the paper queries (timeslice + range + join)."""
    return (
        f"AT {t_mid} Select source(P).name, target(P).name "
        f"From PATHS P Where P MATCHES VNF()->VFC()->VM()->Host()",
        f"AT {t_mid} Retrieve P From PATHS P "
        f"Where P MATCHES VNF()->[Vertical()]{{1,6}}->Host()",
        f"AT {T0 - 1} Select source(P).name From PATHS P Where P MATCHES VM()",
        f"AT {t_mid} Select source(V).name From PATHS V "
        f"Where V MATCHES VM(status='Red')",
        f"AT {t_mid} : {t_end} Select source(P).name, target(P).name "
        f"From PATHS P Where P MATCHES VM()->OnServer()->Host()",
        # Hash-joinable equi-join under a timeslice.
        f"AT {t_mid} Retrieve P, Q From PATHS P, PATHS Q "
        f"Where P MATCHES VFC()->OnVM()->VM() "
        f"And Q MATCHES VM()->OnServer()->Host() "
        f"And target(P) = source(Q)",
    )


@pytest.fixture(scope="module")
def churned_matrix():
    dbs = {}
    for config in BACKEND_MATRIX:
        db = build_matrix_db(config, clock=TransactionClock(start=T0))
        load_and_churn(db)
        dbs[config] = db
    reference = dbs[BACKEND_MATRIX[0]]
    t_end = reference.store.clock.now()
    t_mid = (T0 + t_end) / 2
    return dbs, corpus(t_mid, t_end)


def test_timetravel_corpus_agrees_across_matrix(churned_matrix):
    dbs, queries = churned_matrix
    for query in queries:
        expected = normalized_rows(dbs[BACKEND_MATRIX[0]].query(query))
        for config in BACKEND_MATRIX[1:]:
            actual = normalized_rows(dbs[config].query(query))
            assert actual == expected, (config, query)


def test_indexed_memory_backend_agrees_with_its_own_ablation(churned_matrix):
    dbs, queries = churned_matrix
    db = dbs["memory"]
    store = db.store
    for query in queries:
        store.temporal_index_enabled = True
        indexed = normalized_rows(db.query(query))
        store.temporal_index_enabled = False
        try:
            brute = normalized_rows(db.query(query))
        finally:
            store.temporal_index_enabled = True
        assert indexed == brute, query


def test_hot_path_events_surface_in_stats(churned_matrix):
    dbs, queries = churned_matrix
    db = dbs["memory"]
    for query in queries:
        db.query(query)
    events = db.stats()["events"]
    assert events["index.temporal.class_hit"] >= 1
    assert events["index.temporal.candidates"] >= 1
    assert events["executor.join.hash"] >= 1
    assert events["executor.join.nested_loop"] >= 1
    assert events["index.expand.batches"] >= 1
    # The same snapshot is reachable through the legacy cache_stats name.
    assert db.cache_stats()["events"] == events


def test_recovered_store_answers_history_through_rebuilt_indexes(
    churned_matrix, tmp_path
):
    dbs, queries = churned_matrix
    reference = dbs["memory"]

    data_dir = tmp_path / "data"
    durable = NepalDB(clock=TransactionClock(start=T0), data_dir=str(data_dir))
    handles = VirtualizedServiceTopology(PARAMS).apply(durable.store)
    migratable = {vm: handles.hosts for vm in handles.vms}
    simulator = ChurnSimulator(durable.store, CHURN)
    simulator.run(handles.all_nodes(), handles.all_edges(), migratable)
    durable.checkpoint()  # half the story from the snapshot...
    more = ChurnSimulator(durable.store, ChurnParams(days=3, seed=12))
    more.run(handles.all_nodes(), handles.all_edges(), migratable)
    post_checkpoint_end = durable.store.clock.now()
    durable.close()

    recovered = NepalDB(clock=TransactionClock(start=T0), data_dir=str(data_dir))
    try:
        inner = recovered.store.inner
        assert inner.temporal_posting_count("Host") > 0
        for query in queries:
            expected = normalized_rows(reference.query(query))
            assert normalized_rows(recovered.query(query)) == expected, query
            inner.temporal_index_enabled = False
            brute = normalized_rows(recovered.query(query))
            inner.temporal_index_enabled = True
            assert normalized_rows(recovered.query(query)) == brute, query
        # The journal tail past the checkpoint is indexed too.
        tail = (
            f"AT {post_checkpoint_end - 1} Select source(P).name "
            f"From PATHS P Where P MATCHES VM()"
        )
        inner.temporal_index_enabled = False
        brute_tail = normalized_rows(recovered.query(tail))
        inner.temporal_index_enabled = True
        assert normalized_rows(recovered.query(tail)) == brute_tail
    finally:
        recovered.close()
