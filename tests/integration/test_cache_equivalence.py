"""Property: cached plans and fresh plans always agree, even under churn.

The plan cache's safety argument is that compiled programs carry only plan
shape, never data, so a stale-stats plan can at worst be *slower* than a
fresh one — the answer is identical.  This property test drives a database
through randomized churn (inserts, edge additions, status updates,
deletes, clock advances) and after every write compares the warm-cache
answer of several query shapes with the answer after dropping every cached
plan.  Any divergence is a cache-invalidation bug.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import NepalDB
from repro.storage.base import TimeScope
from repro.temporal.clock import TransactionClock
from tests.conftest import T0, SmallInventory

QUERIES = (
    "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()",
    "Retrieve P From PATHS P Where P MATCHES VFC()->OnVM()->VM()",
    "Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host()",
    "Select source(P).name From PATHS P Where P MATCHES VM()->OnServer()->Host()",
)

#: One churn step: (op name, rng draw used to pick targets/fields).
OPS = ("insert_pair", "insert_vm", "update_status", "delete_vm", "advance")


def _answer(db: NepalDB, query: str) -> list[tuple]:
    """A comparable rendering of a query result (order-insensitive)."""
    rows = []
    for row in db.query(query).rows:
        cells = []
        for value in row.values:
            key = getattr(value, "key", None)
            cells.append(tuple(key()) if callable(key) else value)
        rows.append(tuple(cells))
    return sorted(rows, key=repr)


def _apply(db: NepalDB, inv: SmallInventory, op: str, pick: int, step: int) -> None:
    vms = [inv.vm1, inv.vm2]
    hosts = [inv.host1, inv.host2]
    if op == "insert_pair":
        host = db.insert_node("Host", {"name": f"churn-host-{step}"})
        vm = db.insert_node("VMWare", {"name": f"churn-vm-{step}"})
        db.insert_edge("OnServer", vm, host)
    elif op == "insert_vm":
        vm = db.insert_node("OnMetal", {"name": f"churn-bare-{step}"})
        db.insert_edge("OnServer", vm, hosts[pick % len(hosts)])
    elif op == "update_status":
        status = ("Green", "Yellow", "Red")[pick % 3]
        db.update(hosts[pick % len(hosts)], {"status": status})
    elif op == "delete_vm":
        victim = vms[pick % len(vms)]
        if db.store.get_element(victim, TimeScope.current()) is not None:
            db.delete(victim)
    elif op == "advance":
        db.clock.advance(60 * (1 + pick % 10))


@settings(max_examples=25, deadline=None)
@given(
    steps=st.lists(
        st.tuples(st.sampled_from(OPS), st.integers(min_value=0, max_value=999)),
        min_size=1,
        max_size=8,
    )
)
def test_cached_plans_match_fresh_plans_under_churn(steps):
    db = NepalDB(clock=TransactionClock(start=T0))
    inv = SmallInventory(db.store)
    for query in QUERIES:  # prime the cache on the initial topology
        db.query(query)

    for step, (op, pick) in enumerate(steps):
        _apply(db, inv, op, pick, step)
        for query in QUERIES:
            warm = _answer(db, query)  # served via the (possibly stale) cache
            db.clear_plan_cache()
            fresh = _answer(db, query)  # replanned from scratch
            assert warm == fresh, (
                f"cache divergence after {op!r} (step {step}) on {query!r}"
            )


@settings(max_examples=15, deadline=None)
@given(
    steps=st.lists(
        st.tuples(st.sampled_from(OPS), st.integers(min_value=0, max_value=999)),
        min_size=1,
        max_size=6,
    )
)
def test_two_databases_same_writes_same_answers(steps):
    """A db that caches across churn equals a twin that never reuses plans."""
    caching = NepalDB(clock=TransactionClock(start=T0))
    pristine = NepalDB(clock=TransactionClock(start=T0))
    inv_caching = SmallInventory(caching.store)
    inv_pristine = SmallInventory(pristine.store)
    for query in QUERIES:
        caching.query(query)

    for step, (op, pick) in enumerate(steps):
        _apply(caching, inv_caching, op, pick, step)
        _apply(pristine, inv_pristine, op, pick, step)
        pristine.clear_plan_cache()
        for query in QUERIES:
            assert _answer(caching, query) == _answer(pristine, query)
