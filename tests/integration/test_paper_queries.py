"""End-to-end runs of every query the paper presents (§3.4, §4)."""

import pytest

from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology
from repro.temporal.clock import TransactionClock
from tests.conftest import BACKEND_MATRIX, build_matrix_db

T0 = 1_000_000.0


@pytest.fixture(scope="module", params=BACKEND_MATRIX)
def loaded(request):
    """Every paper query runs on both backends, bare and chaos-decorated
    (zero-fault — the wrapper must be invisible)."""
    db = build_matrix_db(request.param, clock=TransactionClock(start=T0))
    params = TopologyParams(
        services=4, vms=120, virtual_networks=30, virtual_routers=10,
        racks=5, hosts_per_rack=4, spine_switches=3, routers=2,
        seed=20180610,
    )
    handles = VirtualizedServiceTopology(params).apply(db.store)
    return db, handles


def test_server_replacement_impact(loaded):
    """§3.4 example 1: all VNFs affected by replacing a server."""
    db, handles = loaded
    host = handles.vm_host[handles.vfc_vm[handles.vnf_vfcs[handles.vnfs[0]][0]]]
    explicit = db.query(
        f"Retrieve P From PATHS P "
        f"Where P MATCHES VNF()->VFC()->VM()->Host(id={host})"
    )
    generic = db.query(
        f"Retrieve P From PATHS P "
        f"Where P MATCHES VNF()->[Vertical()]{{1,6}}->Host(id={host})"
    )
    assert len(explicit) >= 1
    # The generic Vertical query is a superset of the explicit chain.
    explicit_keys = {row.pathway().key() for row in explicit}
    generic_keys = {row.pathway().key() for row in generic}
    assert explicit_keys <= generic_keys
    assert handles.vnfs[0] in {row.pathway().source.uid for row in explicit}


def test_physical_communication_path_join(loaded):
    """§3.4 example 3: physical path between the hosts of two VNFs."""
    db, handles = loaded
    vnf_a, vnf_b = handles.vnfs[0], handles.vnfs[1]
    result = db.query(
        f"Retrieve Phys From PATHS D1, PATHS D2, PATHS Phys "
        f"Where D1 MATCHES VNF(id={vnf_a})->[Vertical()]{{1,6}}->Host() "
        f"And D2 MATCHES VNF(id={vnf_b})->[Vertical()]{{1,6}}->Host() "
        f"And Phys MATCHES [ConnectedTo()]{{1,6}} "
        f"And source(Phys)=target(D1) And target(Phys)=target(D2)"
    )
    assert len(result) >= 1
    for row in result:
        phys = row.pathway("Phys")
        assert all(
            e.cls.is_subclass_of(db.schema.resolve("ConnectedTo"))
            for e in phys.edges
        )


def test_idle_vm_subquery(loaded):
    """§3.4 example 4: VMs hosting no VNF or VFC, via NOT EXISTS."""
    db, handles = loaded
    result = db.query(
        "Select source(V).name, source(V).id From PATHS V "
        "Where V MATCHES VM() "
        "And NOT EXISTS( Retrieve P from PATHS P "
        "Where P MATCHES (VNF()|VFC())->[HostedOn()]{1,5}->VM() "
        "And target(V) = target(P) )"
    )
    hosting = {handles.vfc_vm[vfc] for vfc in handles.vfcs}
    idle = set(handles.vms) - hosting
    assert {row.values[1] for row in result} == idle


def test_select_vs_retrieve(loaded):
    """Changing Retrieve to Select post-processes the same pathway set."""
    db, handles = loaded
    retrieve = db.query(
        "Retrieve V From PATHS V Where V MATCHES VM(status='Red')"
    )
    select = db.query(
        "Select source(V).name From PATHS V Where V MATCHES VM(status='Red')"
    )
    assert len(retrieve) == len(select)
    assert {row.pathway().source.get("name") for row in retrieve} == set(
        select.scalars()
    )


def test_anchor_alternation_example(loaded):
    """§5.1's anchor-set example: (VM(id=..)|Docker(id=..)) in the middle."""
    db, handles = loaded
    # Find one VM and one Docker container with placements.
    store = db.store
    from repro.storage.base import TimeScope

    vm_uid = next(
        uid for uid in handles.vms
        if store.get_element(uid, TimeScope.current()).cls.name in ("VMWare", "OnMetal")
    )
    docker_uid = next(
        uid for uid in handles.vms
        if store.get_element(uid, TimeScope.current()).cls.name == "Docker"
    )
    result = db.query(
        f"Retrieve P From PATHS P Where P MATCHES "
        f"(VM(id={vm_uid})|Docker(id={docker_uid}))->[HostedOn()]{{1,2}}->Host()"
    )
    sources = {row.pathway().source.uid for row in result}
    assert sources == {vm_uid, docker_uid}


def test_time_travel_snapshot_query(loaded):
    """§4: the 10:00 am state, not the current one."""
    db, handles = loaded
    vm = handles.vms[0]
    old_host = handles.vm_host[vm]
    # Migrate the VM an hour later.
    db.clock.set(T0 + 3600)
    from repro.storage.base import TimeScope

    placement = [
        e for e in db.store.out_edges(vm, TimeScope.current())
        if e.cls.name == "OnServer"
    ][0]
    new_host = next(h for h in handles.hosts if h != old_host)
    db.store.delete_element(placement.uid)
    db.store.insert_edge("OnServer", vm, new_host)

    current = db.query(
        f"Select target(P) From PATHS P "
        f"Where P MATCHES VM(id={vm})->OnServer()->Host()"
    )
    assert [row.values[0].uid for row in current] == [new_host]
    past = db.query(
        f"AT {T0 + 1800} Select target(P) From PATHS P "
        f"Where P MATCHES VM(id={vm})->OnServer()->Host()"
    )
    assert [row.values[0].uid for row in past] == [old_host]
