"""Pathway-set aggregation in Select (the paper's §8 future work)."""

import pytest

from repro.errors import TypeCheckError
from repro.plan.executor import QueryExecutor
from repro.query.ast import AggregateCall
from repro.query.parser import parse_query


@pytest.fixture
def executor(mem_store, small_inventory):
    return QueryExecutor({"default": mem_store}), small_inventory


class TestParsing:
    def test_count_parses(self):
        query = parse_query("Select count(P) From PATHS P Where P MATCHES VM()")
        assert query.projections == (AggregateCall("count", __import__(
            "repro.query.ast", fromlist=["VariableRef"]).VariableRef("P")),)

    def test_nested_expression(self):
        query = parse_query(
            "Select avg(length(P)) From PATHS P Where P MATCHES VM()"
        )
        aggregate = query.projections[0]
        assert isinstance(aggregate, AggregateCall)
        assert aggregate.function == "avg"
        assert aggregate.render() == "avg(length(P))"


class TestExecution:
    def test_count_rows(self, executor):
        ex, inv = executor
        result = ex.execute("Select count(P) From PATHS P Where P MATCHES VM()")
        assert result.value_rows() == [(2,)]
        assert result.columns == ("count(P)",)

    def test_count_empty_is_zero(self, executor):
        ex, _ = executor
        result = ex.execute("Select count(P) From PATHS P Where P MATCHES Router()")
        assert result.value_rows() == [(0,)]

    def test_length_statistics(self, executor):
        ex, inv = executor
        result = ex.execute(
            "Select count(P), min(length(P)), max(length(P)), avg(length(P)) "
            f"From PATHS P Where P MATCHES VNF()->[Vertical()]{{1,6}}->Host()"
        )
        count, low, high, mean = result.value_rows()[0]
        assert count > 0
        assert 1 <= low <= high
        assert low <= mean <= high

    def test_field_aggregates(self, executor):
        ex, inv = executor
        result = ex.execute(
            "Select max(target(P).cpu_cores), sum(target(P).cpu_cores) "
            "From PATHS P Where P MATCHES VM()->OnServer()->Host()"
        )
        assert result.value_rows() == [(64, 96)]

    def test_empty_value_aggregate_is_none(self, executor):
        ex, _ = executor
        result = ex.execute(
            "Select max(length(P)) From PATHS P Where P MATCHES Router()"
        )
        assert result.value_rows() == [(None,)]

    def test_aggregate_over_join(self, executor):
        ex, inv = executor
        result = ex.execute(
            "Select count(P) From PATHS P, PATHS Q "
            "Where P MATCHES VFC()->OnVM()->VM() "
            "And Q MATCHES VM()->OnServer()->Host() "
            "And target(P) = source(Q)"
        )
        assert result.value_rows() == [(2,)]

    def test_aggregate_with_time_range(self, executor, clock):
        ex, inv = executor
        clock.advance(100)
        inv.store.delete_element(inv.e_vm1_host1)
        from tests.conftest import T0

        result = ex.execute(
            f"AT {T0} : {T0 + 1000} Select count(P) From PATHS P "
            f"Where P MATCHES VM()->OnServer()->Host()"
        )
        # Both placements existed at some point in the range.
        assert result.value_rows() == [(2,)]


class TestRejections:
    def test_mixed_projections(self, executor):
        ex, _ = executor
        with pytest.raises(TypeCheckError, match="mixed"):
            ex.execute(
                "Select count(P), source(P).name From PATHS P Where P MATCHES VM()"
            )

    def test_value_aggregate_needs_expression(self, executor):
        ex, _ = executor
        with pytest.raises(TypeCheckError, match="value expression"):
            ex.execute("Select avg(P) From PATHS P Where P MATCHES VM()")

    def test_aggregate_in_where_rejected(self, executor):
        ex, _ = executor
        with pytest.raises(TypeCheckError, match="projections"):
            ex.execute(
                "Retrieve P From PATHS P Where P MATCHES VM() And count(P) > 1"
            )
