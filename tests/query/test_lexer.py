"""Query tokenizer details."""

import pytest

from repro.errors import ParseError
from repro.query.lexer import tokenize_query


def kinds(text):
    return [(t.kind, t.value) for t in tokenize_query(text)]


def test_names_keep_colons():
    assert kinds("VM:VMWare")[0] == ("name", "VM:VMWare")


def test_bare_colon_is_punct():
    tokens = kinds("AT '1' : '2'")
    assert ("punct", ":") in tokens


def test_strings_swallow_colons_and_spaces():
    tokens = kinds("AT '2017-02-15 9:00' : '2017-02-15 11:00'")
    strings = [t for t in tokens if t[0] == "string"]
    assert len(strings) == 2
    assert strings[0][1] == "'2017-02-15 9:00'"


def test_arrow_vs_comparison():
    tokens = kinds("a->b >= 3")
    assert ("arrow", "->") in tokens
    assert ("op", ">=") in tokens


def test_at_and_dot_punct():
    tokens = kinds("PATHS@legacy source(P).name")
    values = [t[1] for t in tokens if t[0] == "punct"]
    assert "@" in values and "." in values


def test_positions_and_end():
    tokens = tokenize_query("Retrieve  P")
    assert tokens[0].position == 0
    assert tokens[0].end == 8
    assert tokens[1].position == 10


def test_keyword_detection_case_insensitive():
    token = tokenize_query("WhErE")[0]
    assert token.is_keyword("where")
    assert not token.is_keyword("from")


def test_rejects_junk():
    with pytest.raises(ParseError):
        tokenize_query("Retrieve $ From")


def test_numbers_with_fractions_and_sign():
    tokens = kinds("AT -1.5 : 200")
    assert ("number", "-1.5") in tokens
    assert ("number", "200") in tokens
