"""Expression evaluation and comparison semantics."""

import pytest

from repro.errors import TypeCheckError
from repro.query.ast import FieldAccess, FunctionCall, Literal, VariableRef
from repro.query.functions import apply_function, compare_values, evaluate_expression
from tests.rpe.util import pathway


@pytest.fixture
def chain():
    return pathway(
        "VMWare:1 OnServer:2 Host:3",
        f1={"name": "vm-1", "vcpus": 4},
        f3={"name": "host-1", "cpu_cores": 64},
    )


def test_source_target_length(chain):
    assert apply_function("source", chain).uid == 1
    assert apply_function("target", chain).uid == 3
    assert apply_function("length", chain) == 1
    assert apply_function("hops", chain) == 1
    with pytest.raises(TypeCheckError):
        apply_function("middle", chain)


def test_evaluate_function_call(chain):
    assert evaluate_expression(FunctionCall("source", "P"), {"P": chain}).uid == 1


def test_evaluate_field_access(chain):
    expr = FieldAccess(FunctionCall("target", "P"), "cpu_cores")
    assert evaluate_expression(expr, {"P": chain}) == 64
    virtual_id = FieldAccess(FunctionCall("target", "P"), "id")
    assert evaluate_expression(virtual_id, {"P": chain}) == 3


def test_evaluate_literal_and_varref(chain):
    assert evaluate_expression(Literal(42), {}) == 42
    assert evaluate_expression(VariableRef("P"), {"P": chain}) is chain


def test_unbound_variable(chain):
    with pytest.raises(TypeCheckError, match="unbound"):
        evaluate_expression(FunctionCall("source", "Q"), {"P": chain})


class TestCompare:
    def test_node_equality_by_uid(self, chain):
        other = pathway("OnMetal:9 OnServer:10 Host:3")
        assert compare_values(chain.target, "=", other.target)
        assert not compare_values(chain.source, "=", other.source)

    def test_node_vs_literal_compares_uid(self, chain):
        assert compare_values(chain.source, "=", 1)
        assert compare_values(3, "=", chain.target)

    def test_value_comparisons(self):
        assert compare_values(2, "<", 3)
        assert compare_values("a", "!=", "b")
        assert compare_values(3, ">=", 3)
        assert not compare_values(2, ">", 3)

    def test_type_mismatch_is_false(self):
        assert not compare_values(2, "<", "three")

    def test_unknown_operator(self):
        with pytest.raises(TypeCheckError):
            compare_values(1, "~", 2)
