"""Named pathway views (§3.4 "Additional views can be defined")."""

import pytest

from repro.errors import TypeCheckError
from repro.plan.executor import QueryExecutor


@pytest.fixture
def executor(mem_store, small_inventory):
    ex = QueryExecutor({"default": mem_store})
    ex.define_view("PLACEMENTS", "VM()->OnServer()->Host()")
    ex.define_view("FOOTPRINT", "VNF()->[Vertical()]{1,6}->Host()")
    return ex, small_inventory


def test_view_variable_needs_no_matches(executor):
    ex, inv = executor
    result = ex.execute("Retrieve P From PLACEMENTS P")
    assert len(result) == 2
    assert {row.pathway().target.uid for row in result} == {inv.host1, inv.host2}


def test_view_names_case_insensitive(executor):
    ex, _ = executor
    assert len(ex.execute("Retrieve P From placements P")) == 2


def test_extra_matches_is_conjunctive(executor):
    ex, inv = executor
    result = ex.execute(
        "Retrieve P From PLACEMENTS P "
        "Where P MATCHES VM()->OnServer()->Host(name='host-1')"
    )
    assert [row.pathway().target.uid for row in result] == [inv.host1]


def test_view_with_projection_and_join(executor):
    ex, inv = executor
    result = ex.execute(
        "Select source(F).name From FOOTPRINT F, PLACEMENTS P "
        "Where target(F) = target(P) And source(P).name = 'vm-1'"
    )
    assert set(result.scalars()) == {"fw-1"}


def test_view_in_subquery(executor):
    ex, inv = executor
    idle = inv.store.insert_node("VMWare", {"name": "idle"})
    result = ex.execute(
        "Retrieve V From PATHS V Where V MATCHES VM() "
        "And NOT EXISTS( Retrieve P From PLACEMENTS P "
        "Where source(V) = source(P) )"
    )
    assert {row.pathway().source.uid for row in result} == {idle}


def test_unknown_view_rejected(executor):
    ex, _ = executor
    with pytest.raises(TypeCheckError, match="unknown pathway view"):
        ex.execute("Retrieve P From MYSTERY P")


def test_view_rpe_validated_against_store_schema(mem_store):
    ex = QueryExecutor({"default": mem_store})
    ex.define_view("BROKEN", "Unicorn()")
    from repro.errors import SchemaError

    with pytest.raises(SchemaError):
        ex.execute("Retrieve P From BROKEN P")


def test_view_with_temporal_scope(network_schema):
    from repro.storage.memgraph.store import MemGraphStore
    from repro.temporal.clock import TransactionClock
    from tests.conftest import T0, SmallInventory

    clock = TransactionClock(start=T0)
    store = MemGraphStore(network_schema, clock=clock)
    inv = SmallInventory(store)
    clock.advance(100)
    store.delete_element(inv.e_vm1_host1)
    ex = QueryExecutor({"default": store})
    ex.define_view("PLACEMENTS", "VM()->OnServer()->Host()")
    now = ex.execute("Retrieve P From PLACEMENTS P")
    assert len(now) == 1
    then = ex.execute(f"AT {T0 + 50} Retrieve P From PLACEMENTS P")
    assert len(then) == 2
