"""NPQL parsing: all clause forms from Sections 3.4 and 4."""

import pytest

from repro.errors import ParseError
from repro.query.ast import (
    FIRST_TIME,
    LAST_TIME,
    RETRIEVE,
    SELECT,
    WHEN_EXISTS,
    ComparePredicate,
    ExistsPredicate,
    FieldAccess,
    FunctionCall,
    VariableRef,
)
from repro.query.parser import parse_query
from repro.temporal.interval import parse_timestamp


class TestBasicForms:
    def test_paper_retrieve(self):
        query = parse_query(
            "Retrieve P From PATHS P "
            "WHERE P MATCHES VNF()->VFC()->VM()->Host(id=23245)"
        )
        assert query.mode == RETRIEVE
        assert query.projections == (VariableRef("P"),)
        assert [v.name for v in query.variables] == ["P"]
        matches = query.matches_for("P")
        assert matches is not None
        assert "Host(id=23245)" in matches.rpe.render()

    def test_paper_select_with_field_access(self):
        query = parse_query(
            "Select source(V).name, source(V).id From PATHS V Where V MATCHES VM()"
        )
        assert query.mode == SELECT
        assert query.projections[0] == FieldAccess(FunctionCall("source", "V"), "name")
        assert query.projections[1] == FieldAccess(FunctionCall("source", "V"), "id")

    def test_keywords_case_insensitive(self):
        query = parse_query("retrieve p FROM paths p wHeRe p matches VM()")
        assert query.mode == RETRIEVE

    def test_join_query(self):
        query = parse_query(
            "Retrieve Phys From PATHS D1, PATHS D2, PATHS Phys "
            "Where D1 MATCHES VNF(id=123)->[Vertical()]{1,6}->Host() "
            "And D2 MATCHES VNF(id=234)->[Vertical()]{1,6}->Host() "
            "And Phys MATCHES [ConnectedTo()]{1,8} "
            "And source(Phys)=target(D1) And target(Phys)=target(D2)"
        )
        assert len(query.variables) == 3
        compares = [p for p in query.predicates if isinstance(p, ComparePredicate)]
        assert len(compares) == 2
        assert compares[0].left == FunctionCall("source", "Phys")
        assert compares[0].right == FunctionCall("target", "D1")

    def test_not_exists_subquery(self):
        query = parse_query(
            "Retrieve V From PATHS V Where V MATCHES VM() "
            "And NOT EXISTS( Retrieve P from PATHS P "
            "Where P MATCHES (VNF()|VFC())->[HostedOn()]{1,5}->VM() "
            "And target(V) = target(P) )"
        )
        exists = [p for p in query.predicates if isinstance(p, ExistsPredicate)]
        assert len(exists) == 1
        assert exists[0].negated
        sub = exists[0].query
        assert sub.declared_variables() == {"P"}
        assert sub.free_variables() == {"V"}

    def test_literal_comparisons(self):
        query = parse_query(
            "Retrieve P From PATHS P Where P MATCHES VM() And length(P) >= 2"
        )
        compare = query.predicates[1]
        assert isinstance(compare, ComparePredicate)
        assert compare.op == ">="
        assert compare.right.value == 2


class TestTemporalClauses:
    def test_query_level_at_point(self):
        query = parse_query(
            "AT '2017-02-15 10:00:00' Select source(P) From PATHS P "
            "Where P MATCHES VNF()->[HostedOn()]{1,6}->Host(id=23245)"
        )
        assert query.at is not None
        assert not query.at.is_range
        assert query.at.start == parse_timestamp("2017-02-15 10:00:00")

    def test_query_level_at_range(self):
        query = parse_query(
            "AT '2017-02-15 9:00' : '2017-02-15 11:00' Select source(P) "
            "From PATHS P Where P MATCHES VM()"
        )
        assert query.at.is_range
        assert query.at.end > query.at.start

    def test_per_variable_timestamps(self):
        # §4: PATHS P(@'2017-02-15 10:00'), Q(@'2017-02-15 11:00')
        query = parse_query(
            "Select source(P) From PATHS P(@'2017-02-15 10:00'), "
            "PATHS Q(@'2017-02-15 11:00') "
            "Where P MATCHES VM() And Q MATCHES VM() And source(P) = source(Q)"
        )
        assert query.variables[0].at.start == parse_timestamp("2017-02-15 10:00")
        assert query.variables[1].at.start == parse_timestamp("2017-02-15 11:00")

    def test_per_variable_range(self):
        query = parse_query(
            "Retrieve P From PATHS P(@100:200) Where P MATCHES VM()"
        )
        assert query.variables[0].at.is_range

    def test_numeric_timestamps(self):
        query = parse_query("AT 1500 Retrieve P From PATHS P Where P MATCHES VM()")
        assert query.at.start == 1500.0

    @pytest.mark.parametrize(
        "prefix,op",
        [
            ("FIRST TIME WHEN EXISTS", FIRST_TIME),
            ("LAST TIME WHEN EXISTS", LAST_TIME),
            ("WHEN EXISTS", WHEN_EXISTS),
        ],
    )
    def test_temporal_aggregates(self, prefix, op):
        query = parse_query(
            f"{prefix} AT 0 : 100 Retrieve P From PATHS P Where P MATCHES VM()"
        )
        assert query.temporal_op == op
        assert query.at.is_range


class TestViews:
    def test_view_source_parses(self):
        query = parse_query("Retrieve P From PLACEMENTS P")
        assert query.variables[0].view == "PLACEMENTS"
        assert "PLACEMENTS P" in query.render()

    def test_paths_is_not_a_view(self):
        query = parse_query("Retrieve P From PATHS P Where P MATCHES VM()")
        assert query.variables[0].view is None

    def test_view_with_store_and_timestamp(self):
        query = parse_query("Retrieve P From PLACEMENTS@legacy P(@100)")
        variable = query.variables[0]
        assert variable.view == "PLACEMENTS"
        assert variable.store == "legacy"
        assert variable.at.start == 100.0


class TestFederation:
    def test_store_qualified_paths(self):
        query = parse_query(
            "Retrieve P, Q From PATHS@cloud P, PATHS@legacy Q "
            "Where P MATCHES VM() And Q MATCHES Entity()"
        )
        assert query.variables[0].store == "cloud"
        assert query.variables[1].store == "legacy"

    def test_default_store_is_none(self):
        query = parse_query("Retrieve P From PATHS P Where P MATCHES VM()")
        assert query.variables[0].store is None


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "Retrieve From PATHS P",
            "Retrieve P PATHS P",
            "Retrieve P From PATHS P Where",
            "Retrieve P From PATHS P Where P MATCHES",
            "Retrieve P From PATHS P Where P MATCHES VM() And",
            "Select source() From PATHS P Where P MATCHES VM()",
            "Select mangle(P) From PATHS P Where P MATCHES VM()",
            "AT Retrieve P From PATHS P Where P MATCHES VM()",
            "Retrieve P From PATHS P Where P MATCHES VM() trailing",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ParseError):
            parse_query(bad)


class TestRendering:
    @pytest.mark.parametrize(
        "text",
        [
            "Retrieve P From PATHS P Where P MATCHES VM()",
            "Select source(P).name From PATHS P Where P MATCHES VM()->Host()",
            "AT 100 Retrieve P From PATHS P Where P MATCHES VM()",
            "AT 100 : 200 Retrieve P From PATHS P Where P MATCHES VM()",
            "WHEN EXISTS AT 100 : 200 Retrieve P From PATHS P Where P MATCHES VM()",
        ],
    )
    def test_render_reparse_stable(self, text):
        first = parse_query(text)
        second = parse_query(first.render())
        assert first.render() == second.render()
