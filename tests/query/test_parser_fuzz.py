"""Property tests: random query ASTs render → reparse to the same AST."""

from hypothesis import given, settings, strategies as st

from repro.query.ast import (
    RETRIEVE,
    SELECT,
    AggregateCall,
    ComparePredicate,
    FieldAccess,
    FunctionCall,
    Literal,
    MatchesPredicate,
    OrderKey,
    Query,
    RangeVariable,
    TemporalSpec,
    VariableRef,
)
from repro.query.parser import parse_query
from repro.rpe.parser import parse_rpe

_names = st.sampled_from(["P", "Q", "R2", "Phys"])
_classes = st.sampled_from(["VM", "Host", "VNF", "ConnectedTo"])
_fields = st.sampled_from(["name", "status", "vcpus"])


@st.composite
def rpe_texts(draw):
    parts = []
    for _ in range(draw(st.integers(1, 3))):
        cls = draw(_classes)
        if draw(st.booleans()):
            parts.append(f"{cls}()")
        else:
            parts.append(f"[{cls}()]{{1,{draw(st.integers(1, 4))}}}")
    return "->".join(parts)


@st.composite
def expressions(draw, allow_aggregate=False):
    kind = draw(st.sampled_from(
        ["func", "field", "literal"] + (["agg"] if allow_aggregate else [])
    ))
    if kind == "func":
        return FunctionCall(draw(st.sampled_from(["source", "target", "length"])),
                            draw(_names))
    if kind == "field":
        return FieldAccess(
            FunctionCall(draw(st.sampled_from(["source", "target"])), draw(_names)),
            draw(_fields),
        )
    if kind == "literal":
        return Literal(draw(st.one_of(
            st.integers(-100, 100),
            st.text(alphabet="abcz ", min_size=0, max_size=5),
        )))
    return AggregateCall(
        draw(st.sampled_from(["min", "max", "sum", "avg"])),
        FunctionCall("length", draw(_names)),
    )


@st.composite
def queries(draw):
    variables = tuple(
        RangeVariable(name)
        for name in draw(st.lists(_names, min_size=1, max_size=3, unique=True))
    )
    predicates = [
        MatchesPredicate(v.name, parse_rpe(draw(rpe_texts()))) for v in variables
    ]
    for _ in range(draw(st.integers(0, 2))):
        predicates.append(
            ComparePredicate(
                draw(expressions()),
                draw(st.sampled_from(["=", "!=", "<", ">="])),
                draw(expressions()),
            )
        )
    mode = draw(st.sampled_from([RETRIEVE, SELECT]))
    if mode == RETRIEVE:
        projections = tuple(VariableRef(v.name) for v in variables)
    else:
        projections = tuple(
            draw(expressions())
            for _ in range(draw(st.integers(1, 2)))
        )
    at = draw(st.one_of(
        st.none(),
        st.builds(TemporalSpec, st.integers(0, 10**6).map(float)),
        st.builds(
            TemporalSpec,
            st.just(100.0),
            st.integers(200, 10**6).map(float),
        ),
    ))
    order_by = tuple(
        OrderKey(draw(expressions()), draw(st.booleans()))
        for _ in range(draw(st.integers(0, 2)))
    )
    limit = draw(st.one_of(st.none(), st.integers(0, 50)))
    return Query(
        mode=mode,
        projections=projections,
        variables=variables,
        predicates=tuple(predicates),
        at=at,
        order_by=order_by,
        limit=limit,
    )


def _strip(query: Query) -> tuple:
    """Comparable digest ignoring RPE object identity (compare rendered)."""
    return (
        query.mode,
        tuple(p.render() for p in query.projections),
        tuple(v.render() for v in query.variables),
        tuple(p.render() for p in query.predicates),
        None if query.at is None else (query.at.start, query.at.end),
        tuple(k.render() for k in query.order_by),
        query.limit,
    )


@settings(max_examples=150, deadline=None)
@given(queries())
def test_render_reparse_roundtrip(query):
    reparsed = parse_query(query.render())
    assert _strip(reparsed) == _strip(query)


@settings(max_examples=80, deadline=None)
@given(queries())
def test_render_is_stable(query):
    once = parse_query(query.render()).render()
    twice = parse_query(once).render()
    assert once == twice
