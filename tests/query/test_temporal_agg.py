"""Path evolution and temporal aggregate helpers (§4 / [18])."""

import pytest

from repro.model.pathway import Pathway
from repro.query.temporal_agg import (
    first_time_when_exists,
    last_time_when_exists,
    path_evolution,
    when_exists,
)
from repro.storage.base import TimeScope
from repro.temporal.interval import FOREVER, Interval, IntervalSet
from tests.conftest import T0


@pytest.fixture
def evolved(mem_store, clock):
    vm = mem_store.insert_node("VM", {"name": "vm", "status": "Green"})
    host = mem_store.insert_node("Host", {"name": "host", "status": "Green"})
    edge = mem_store.insert_edge("OnServer", vm, host)
    clock.set(T0 + 100)
    mem_store.update_element(vm, {"status": "Red"})
    clock.set(T0 + 200)
    mem_store.delete_element(edge)
    clock.set(T0 + 300)
    mem_store.insert_edge("OnServer", vm, host, uid=edge)
    scope = TimeScope.current()
    elements = [
        mem_store.get_element(vm, scope),
        mem_store.get_element(edge, scope),
        mem_store.get_element(host, scope),
    ]
    return mem_store, Pathway(elements), (vm, edge, host)


class TestPathEvolution:
    def test_existence_reflects_edge_outage(self, evolved):
        store, pathway, _ = evolved
        evolution = path_evolution(store, pathway, Interval(T0, T0 + 1000))
        assert evolution.existence.intervals == (
            Interval(T0, T0 + 200),
            Interval(T0 + 300, T0 + 1000),
        )

    def test_field_changes_tracked(self, evolved):
        store, pathway, (vm, _, _) = evolved
        evolution = path_evolution(store, pathway, Interval(T0, T0 + 1000))
        status_changes = [
            change for change in evolution.changes if change.field_name == "status"
        ]
        assert len(status_changes) == 1
        change = status_changes[0]
        assert change.at == T0 + 100
        assert change.uid == vm
        assert (change.old_value, change.new_value) == ("Green", "Red")

    def test_changes_outside_window_ignored(self, evolved):
        store, pathway, _ = evolved
        evolution = path_evolution(store, pathway, Interval(T0 + 150, T0 + 1000))
        assert all(change.at >= T0 + 150 for change in evolution.changes)
        assert not any(
            change.field_name == "status" for change in evolution.changes
        )

    def test_render(self, evolved):
        store, pathway, _ = evolved
        evolution = path_evolution(store, pathway, Interval(T0, T0 + 1000))
        text = evolution.render()
        assert "evolution of" in text
        assert "status" in text


class TestAggregateHelpers:
    def test_first_last_when(self):
        validities = [
            IntervalSet([Interval(10, 20)]),
            IntervalSet([Interval(5, 8), Interval(30, FOREVER)]),
        ]
        assert first_time_when_exists(validities) == 5
        assert last_time_when_exists(validities) == FOREVER
        union = when_exists(validities)
        assert union.intervals == (
            Interval(5, 8), Interval(10, 20), Interval(30, FOREVER),
        )

    def test_empty(self):
        assert first_time_when_exists([]) is None
        assert first_time_when_exists([IntervalSet.empty()]) is None
        assert when_exists([]).is_empty()
