"""Order By and Limit clauses."""

import pytest

from repro.errors import ParseError, TypeCheckError
from repro.plan.executor import QueryExecutor
from repro.query.parser import parse_query


@pytest.fixture
def executor(mem_store):
    for index, cores in enumerate((16, 64, 32, 64)):
        mem_store.insert_node(
            "Host", {"name": f"h{index}", "cpu_cores": cores, "status": "Green"}
        )
    return QueryExecutor({"default": mem_store})


class TestParsing:
    def test_order_and_limit_parse(self):
        query = parse_query(
            "Select source(P).name From PATHS P Where P MATCHES Host() "
            "Order By source(P).cpu_cores Desc, source(P).name Limit 5"
        )
        assert len(query.order_by) == 2
        assert query.order_by[0].descending
        assert not query.order_by[1].descending
        assert query.limit == 5

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse_query("Retrieve P From PATHS P Where P MATCHES Host() Limit 2.5")
        with pytest.raises(ParseError):
            parse_query("Retrieve P From PATHS P Where P MATCHES Host() Limit many")

    def test_render_round_trips(self):
        text = (
            "Select source(P).name From PATHS P Where P MATCHES Host() "
            "Order By source(P).name Desc Limit 3"
        )
        first = parse_query(text)
        assert parse_query(first.render()).render() == first.render()
        assert "Order By" in first.render() and "Limit 3" in first.render()


class TestExecution:
    def test_order_ascending_default(self, executor):
        result = executor.execute(
            "Select source(P).cpu_cores From PATHS P Where P MATCHES Host() "
            "Order By source(P).cpu_cores"
        )
        assert result.scalars() == [16, 32, 64, 64]

    def test_order_descending(self, executor):
        result = executor.execute(
            "Select source(P).cpu_cores From PATHS P Where P MATCHES Host() "
            "Order By source(P).cpu_cores Desc"
        )
        assert result.scalars() == [64, 64, 32, 16]

    def test_secondary_key_breaks_ties(self, executor):
        result = executor.execute(
            "Select source(P).name From PATHS P Where P MATCHES Host() "
            "Order By source(P).cpu_cores Desc, source(P).name Desc"
        )
        assert result.scalars() == ["h3", "h1", "h2", "h0"]

    def test_limit_truncates(self, executor):
        result = executor.execute(
            "Select source(P).name From PATHS P Where P MATCHES Host() "
            "Order By source(P).name Limit 2"
        )
        assert result.scalars() == ["h0", "h1"]

    def test_limit_zero(self, executor):
        result = executor.execute(
            "Retrieve P From PATHS P Where P MATCHES Host() Limit 0"
        )
        assert len(result) == 0

    def test_order_by_node_sorts_by_uid(self, executor):
        result = executor.execute(
            "Select source(P) From PATHS P Where P MATCHES Host() "
            "Order By source(P) Desc Limit 1"
        )
        uids = [row.values[0].uid for row in result]
        assert uids == [4]

    def test_order_key_typechecked(self, executor):
        with pytest.raises(TypeCheckError):
            executor.execute(
                "Retrieve P From PATHS P Where P MATCHES Host() "
                "Order By source(Q).name"
            )

    def test_retrieve_with_order_and_limit(self, executor):
        result = executor.execute(
            "Retrieve P From PATHS P Where P MATCHES Host() "
            "Order By source(P).cpu_cores Limit 1"
        )
        assert result[0].pathway().source.get("cpu_cores") == 16
