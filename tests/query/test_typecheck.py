"""Semantic validation of queries, incl. the LCA endpoint-typing rule."""

import pytest

from repro.errors import TypeCheckError
from repro.query.parser import parse_query
from repro.query.typecheck import boundary_atoms, endpoint_class, typecheck_query
from repro.rpe.normalize import normalize
from repro.rpe.parser import parse_rpe
from repro.schema.builtin import build_network_schema

SCHEMA = build_network_schema()


def check(text):
    return typecheck_query(parse_query(text), lambda variable: SCHEMA)


class TestStructure:
    def test_valid_query_passes(self):
        checked = check("Retrieve P From PATHS P Where P MATCHES VM()->Host()")
        assert "P" in checked.bound_matches

    def test_variable_without_matches(self):
        with pytest.raises(TypeCheckError, match="without a MATCHES"):
            check("Retrieve P From PATHS P, PATHS Q Where P MATCHES VM()")

    def test_double_matches_rejected(self):
        with pytest.raises(TypeCheckError, match="more than one MATCHES"):
            check(
                "Retrieve P From PATHS P Where P MATCHES VM() And P MATCHES Host()"
            )

    def test_duplicate_variable_rejected(self):
        with pytest.raises(TypeCheckError, match="declared twice"):
            check(
                "Retrieve P From PATHS P, PATHS P "
                "Where P MATCHES VM() And P MATCHES VM()"
            )

    def test_matches_on_undeclared_variable(self):
        with pytest.raises(TypeCheckError, match="undeclared"):
            check("Retrieve P From PATHS P Where P MATCHES VM() And Q MATCHES VM()")

    def test_expression_on_undeclared_variable(self):
        with pytest.raises(TypeCheckError, match="undeclared"):
            check(
                "Select source(Q) From PATHS P Where P MATCHES VM()"
            )

    def test_rpe_binding_errors_surface(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            check("Retrieve P From PATHS P Where P MATCHES Unicorn()")
        with pytest.raises(TypeCheckError, match="unknown field"):
            check("Retrieve P From PATHS P Where P MATCHES VM(altitude=3)")

    def test_subquery_sees_outer_variables(self):
        checked = check(
            "Retrieve V From PATHS V Where V MATCHES VM() "
            "And NOT EXISTS( Retrieve P from PATHS P "
            "Where P MATCHES VFC()->OnVM()->VM() And target(V) = target(P) )"
        )
        assert 1 in checked.subqueries

    def test_subquery_shadowing_rejected(self):
        with pytest.raises(TypeCheckError, match="shadows"):
            check(
                "Retrieve V From PATHS V Where V MATCHES VM() "
                "And EXISTS( Retrieve V from PATHS V Where V MATCHES Host() )"
            )


class TestEndpointTyping:
    def endpoint(self, rpe_text, end):
        rpe = normalize(parse_rpe(rpe_text).bind(SCHEMA))
        return endpoint_class(rpe, SCHEMA, end)

    def test_simple_node_endpoints(self):
        assert self.endpoint("VM()->OnServer()->Host()", "source").name == "VM"
        assert self.endpoint("VM()->OnServer()->Host()", "target").name == "Host"

    def test_lca_over_alternation(self):
        # VMWare | Docker generalize to Container.
        assert self.endpoint("(VMWare()|Docker())->Host()", "source").name == "Container"

    def test_edge_atom_endpoint_uses_rules(self):
        # OnServer: Container -> Host.
        assert self.endpoint("OnServer()", "source").name == "Container"
        assert self.endpoint("OnServer()", "target").name == "Host"

    def test_optional_prefix_widens(self):
        cls = self.endpoint("[VM()]{0,2}->Host()", "source")
        # Source may be a VM (one or more copies) or the Host itself.
        assert cls.name in ("NetworkElement", "Node")

    def test_boundary_atoms_through_repetition(self):
        rpe = normalize(parse_rpe("[ConnectedTo()]{1,4}").bind(SCHEMA))
        atoms = boundary_atoms(rpe, "source")
        assert [a.class_name for a in atoms] == ["ConnectedTo"]

    def test_field_access_validated_against_endpoint(self):
        check(
            "Select target(P).cpu_cores From PATHS P "
            "Where P MATCHES VM()->OnServer()->Host()"
        )
        with pytest.raises(TypeCheckError, match="no field"):
            check(
                "Select target(P).vcpus From PATHS P "
                "Where P MATCHES VM()->OnServer()->Host()"
            )

    def test_subclass_field_rejected_on_generalized_endpoint(self):
        # Source class is Container (LCA), which has no vcpus.
        with pytest.raises(TypeCheckError, match="no field"):
            check(
                "Select source(P).vcpus From PATHS P "
                "Where P MATCHES (VMWare()|Docker())->Host()"
            )

    def test_id_always_available(self):
        check(
            "Select source(P).id From PATHS P Where P MATCHES (VMWare()|Docker())"
        )

    def test_field_access_on_length_rejected(self):
        with pytest.raises(TypeCheckError, match="returns a"):
            check(
                "Select length(P).name From PATHS P Where P MATCHES VM()"
            )
