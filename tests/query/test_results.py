"""Result rows and rendering."""

import pytest

from repro.query.results import QueryResult, ResultRow
from repro.temporal.interval import FOREVER, Interval, IntervalSet
from tests.rpe.util import pathway


@pytest.fixture
def chain():
    return pathway("VMWare:1 OnServer:2 Host:3", f1={"name": "vm-1"})


def test_pathway_accessor_single_binding(chain):
    row = ResultRow(values=(chain,), bindings={"P": chain})
    assert row.pathway() is chain
    assert row.pathway("P") is chain


def test_pathway_accessor_requires_name_when_ambiguous(chain):
    other = pathway("Docker:9")
    row = ResultRow(values=(chain, other), bindings={"P": chain, "Q": other})
    with pytest.raises(KeyError):
        row.pathway()
    assert row.pathway("Q") is other


def test_times_render_like_the_paper(chain):
    validity = IntervalSet([
        Interval(1_000_000.0, 2_000_000.0),
        Interval(3_000_000.0, FOREVER),
    ])
    row = ResultRow(values=(chain,), bindings={"P": chain}, validity=validity)
    times = row.times()
    assert len(times) == 2
    # A still-current interval renders with an empty upper bound, like the
    # paper's `times: ['2017-02-15 09:15', ]`.
    assert times[1][1] == ""


def test_result_collection_protocols(chain):
    rows = [ResultRow(values=(i,), bindings={"P": chain}) for i in range(3)]
    result = QueryResult(("n",), rows)
    assert len(result) == 3
    assert [row.values[0] for row in result] == [0, 1, 2]
    assert result[1].values == (1,)
    assert result.scalars() == [0, 1, 2]
    assert result.value_rows() == [(0,), (1,), (2,)]
    assert "3 rows" in repr(result)


def test_pathways_helper(chain):
    rows = [ResultRow(values=(chain,), bindings={"P": chain})]
    result = QueryResult(("P",), rows)
    assert result.pathways() == [chain]
    assert result.pathways("P") == [chain]


def test_to_table_renders_pathways(chain):
    result = QueryResult(
        ("P", "n"), [ResultRow(values=(chain, 42), bindings={"P": chain})]
    )
    table = result.to_table()
    assert "-OnServer->" in table
    assert "42" in table
