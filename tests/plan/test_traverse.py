"""Generic frontier traversal: direction, pruning, dedup, seeded entry."""

import pytest

from repro.plan.planner import Planner
from repro.plan.traverse import evaluate_from_endpoints
from repro.stats.cardinality import CardinalityEstimator
from repro.storage.base import TimeScope


@pytest.fixture
def planner(mem_store):
    # Bind against the *store's* schema: class identity matters.
    return Planner(mem_store.schema, CardinalityEstimator(mem_store))


CURRENT = TimeScope.current()


def keys(pathways):
    return {p.key() for p in pathways}


class TestDirections:
    def test_forward_from_start_anchor(self, mem_store, small_inventory, planner):
        inv = small_inventory
        program = planner.compile(f"VNF(id={inv.firewall})->[Vertical()]{{1,6}}->Host()")
        found = mem_store.find_pathways(program, CURRENT)
        targets = {p.target.uid for p in found}
        assert targets == {inv.host1, inv.host2}
        # Full chains VNF -> VFC -> VM -> Host appear.
        assert any(p.hop_count == 3 for p in found)

    def test_backward_from_end_anchor(self, mem_store, small_inventory, planner):
        inv = small_inventory
        program = planner.compile(f"VNF()->[Vertical()]{{1,6}}->Host(id={inv.host1})")
        found = mem_store.find_pathways(program, CURRENT)
        assert {p.source.uid for p in found} == {inv.firewall}
        assert {p.target.uid for p in found} == {inv.host1}

    def test_middle_anchor_joins_both_directions(self, mem_store, small_inventory, planner):
        inv = small_inventory
        program = planner.compile(
            f"VNF()->[Vertical()]{{1,2}}->VM(id={inv.vm1})->OnServer()->Host()"
        )
        found = mem_store.find_pathways(program, CURRENT)
        assert found
        for pathway in found:
            assert pathway.source.uid == inv.firewall
            assert pathway.target.uid == inv.host1
            assert inv.vm1 in pathway.key()

    def test_edge_anchor(self, mem_store, small_inventory, planner):
        inv = small_inventory
        program = planner.compile(f"OnServer(id={inv.e_vm1_host1})")
        found = mem_store.find_pathways(program, CURRENT)
        assert keys(found) == {(inv.vm1, inv.e_vm1_host1, inv.host1)}


class TestResultProperties:
    def test_simple_paths_only(self, mem_store, small_inventory, planner):
        inv = small_inventory
        program = planner.compile(f"Host(id={inv.host1})->[ConnectedTo()]{{1,6}}->Host()")
        for pathway in mem_store.find_pathways(program, CURRENT):
            assert pathway.is_simple()

    def test_no_duplicates(self, mem_store, small_inventory, planner):
        inv = small_inventory
        program = planner.compile(f"VM(id={inv.vm1})->[ConnectedTo()]{{1,4}}->VM()")
        found = mem_store.find_pathways(program, CURRENT)
        assert len(found) == len(keys(found))

    def test_reciprocal_edges_not_bounced(self, mem_store, small_inventory, planner):
        # vm1 <-> net1 <-> vm2: no pathway may use a reciprocal pair to
        # revisit a node (simple-path rule).
        inv = small_inventory
        program = planner.compile(f"VM(id={inv.vm1})->[VmNetwork()]{{1,4}}->VM()")
        found = mem_store.find_pathways(program, CURRENT)
        assert {p.target.uid for p in found} == {inv.vm2}


class TestSeededEvaluation:
    def test_seeds_bypass_anchor_scan(self, mem_store, small_inventory, planner):
        import dataclasses

        inv = small_inventory
        program = planner.compile("VM()->OnServer()->Host()")
        seeded = dataclasses.replace(program, seeds=(inv.vm1,))
        found = mem_store.find_pathways(seeded, CURRENT)
        assert keys(found) == {(inv.vm1, inv.e_vm1_host1, inv.host1)}

    def test_endpoint_import_source(self, mem_store, small_inventory, planner):
        inv = small_inventory
        # host1 -> tor1 -> tor2 -> host2 is the only host-to-host walk.
        program = planner.compile("Host()->[ConnectedTo()]{1,4}->Host()")
        found = evaluate_from_endpoints(
            mem_store, program, CURRENT, [inv.host1], end="source"
        )
        assert found
        assert all(p.source.uid == inv.host1 for p in found)
        assert {p.target.uid for p in found} == {inv.host2}

    def test_endpoint_import_target(self, mem_store, small_inventory, planner):
        inv = small_inventory
        program = planner.compile("VNF()->[Vertical()]{1,6}->Host()")
        found = evaluate_from_endpoints(
            mem_store, program, CURRENT, [inv.host2], end="target"
        )
        assert found
        assert all(p.target.uid == inv.host2 for p in found)
        assert {p.source.uid for p in found} == {inv.firewall}

    def test_endpoint_import_matches_anchor_scan(self, mem_store, small_inventory, planner):
        # Seeding with *every* possible endpoint must equal the plain scan.
        inv = small_inventory
        program = planner.compile("VM()->OnServer()->Host()")
        plain = keys(mem_store.find_pathways(program, CURRENT))
        seeded = keys(
            evaluate_from_endpoints(
                mem_store, program, CURRENT, [inv.vm1, inv.vm2, inv.host1], end="source"
            )
        )
        assert seeded == plain
