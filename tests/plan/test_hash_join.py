"""The executor's hash-join fast path.

Equi-join predicates whose sides split cleanly across a join — one side
over the incoming variable, the other over already-bound variables — are
executed by hashing the bound side and probing per pathway.  These tests
pin (a) byte-identical results and ordering against the nested loop the
hash path replaces, (b) the ``executor.join.*`` metrics trail, and (c)
the fallback whenever keys cannot be hashed faithfully.
"""

from __future__ import annotations

import pytest

from repro.model.elements import NodeRecord
from repro.plan.executor import _UNHASHABLE, QueryExecutor, _join_key
from repro.schema.builtin import build_network_schema
from repro.stats.metrics import MetricsRegistry
from repro.storage.memgraph.store import MemGraphStore
from repro.temporal.clock import TransactionClock
from tests.conftest import T0, SmallInventory

JOIN_QUERIES = (
    "Retrieve P, Q From PATHS P, PATHS Q "
    "Where P MATCHES VFC()->OnVM()->VM() "
    "And Q MATCHES VM()->OnServer()->Host() "
    "And target(P) = source(Q)",
    # Three-way physical-path join (§3.4 shape).
    "Retrieve Phys From PATHS D1, PATHS D2, PATHS Phys "
    "Where D1 MATCHES VM()->OnServer()->Host() "
    "And D2 MATCHES VM()->OnServer()->Host() "
    "And Phys MATCHES [ConnectedTo()]{1,4} "
    "And source(Phys)=target(D1) And target(Phys)=target(D2)",
    # Field-equality join key (status is a string key, not a node uid).
    "Retrieve P, Q From PATHS P, PATHS Q "
    "Where P MATCHES VM() And Q MATCHES Host() "
    "And source(P).status = source(Q).status",
    # id() against a node: compare_values normalizes the node to its uid.
    "Retrieve P, Q From PATHS P, PATHS Q "
    "Where P MATCHES VM() And Q MATCHES VM()->OnServer()->Host() "
    "And source(P) = source(Q)",
)


def build_executor() -> tuple[QueryExecutor, SmallInventory, MetricsRegistry]:
    store = MemGraphStore(build_network_schema(), clock=TransactionClock(start=T0))
    inventory = SmallInventory(store)
    metrics = MetricsRegistry()
    executor = QueryExecutor({"default": store}, metrics=metrics)
    return executor, inventory, metrics


def rows_of(result):
    return [
        tuple(sorted((name, p.key()) for name, p in row.bindings.items()))
        for row in result.rows
    ]


@pytest.mark.parametrize("query", JOIN_QUERIES)
def test_hash_join_equals_nested_loop_including_order(query, monkeypatch):
    hashed_ex, _, hashed_metrics = build_executor()
    hashed = rows_of(hashed_ex.execute(query))

    looped_ex, _, looped_metrics = build_executor()
    monkeypatch.setattr(
        QueryExecutor, "_equi_join_predicate", lambda self, item, ready: None
    )
    looped = rows_of(looped_ex.execute(query))
    monkeypatch.undo()

    assert hashed == looped  # order-sensitive on purpose
    assert hashed_metrics.events("executor.join")["executor.join.hash"] >= 1
    assert "executor.join.hash" not in looped_metrics.events("executor.join")
    # Both paths agree on the logical join sizes they report.
    assert (
        hashed_metrics.events("executor.join")["executor.join.rows_out"]
        == looped_metrics.events("executor.join")["executor.join.rows_out"]
    )


def test_join_events_accounting():
    executor, inv, metrics = build_executor()
    result = executor.execute(
        "Retrieve P, Q From PATHS P, PATHS Q "
        "Where P MATCHES VFC()->OnVM()->VM() "
        "And Q MATCHES VM()->OnServer()->Host() "
        "And target(P) = source(Q)"
    )
    assert len(result) == 2
    events = metrics.events("executor.join")
    # First variable joins against the empty binding (nested loop, no equi
    # predicate is ready); the second is the hash join under test.
    assert events["executor.join.hash"] == 1
    assert events["executor.join.nested_loop"] == 1
    assert events["executor.join.rows_in"] == 2 + 2 * 2
    assert events["executor.join.rows_out"] == 2 + 2


def test_single_variable_queries_never_hash():
    executor, _, metrics = build_executor()
    executor.execute("Retrieve P From PATHS P Where P MATCHES VM()")
    events = metrics.events("executor.join")
    assert "executor.join.hash" not in events
    assert events["executor.join.nested_loop"] == 1


def test_join_key_semantics_match_compare_values():
    store = MemGraphStore(build_network_schema(), clock=TransactionClock(start=T0))
    uid = store.insert_node("Host", {"name": "h"})
    node = store.node(uid)
    assert isinstance(node, NodeRecord)
    assert _join_key(node) == uid  # node vs uid literal joins by uid
    assert _join_key(5) == 5
    assert _join_key(5.0) == 5  # hashes/compares equal across numeric kinds
    assert _join_key("x") == "x"
    assert _join_key(None) is None
    assert _join_key(True) == 1
    assert _join_key([1, 2]) is _UNHASHABLE
    assert _join_key({"a": 1}) is _UNHASHABLE
    assert _join_key(object()) is _UNHASHABLE


def test_unhashable_keys_fall_back_to_nested_loop():
    executor, inv, metrics = build_executor()
    item_stub = type(
        "Item", (), {"name": "Q", "pathways": None}
    )()

    class Expr:
        def __init__(self, value):
            self.value = value

        def variables(self):
            return set()

    # Drive _hash_join directly with a build expression that evaluates to
    # an unhashable value: it must decline (None), not raise.
    from repro.plan import executor as executor_module

    original = executor_module.evaluate_expression
    executor_module.evaluate_expression = lambda expr, bindings: expr.value
    try:
        item_stub.pathways = ["pathway"]
        declined = executor._hash_join(
            item_stub, [{}], [], (Expr([1]), Expr([1]))
        )
    finally:
        executor_module.evaluate_expression = original
    assert declined is None
