"""The compiled-plan cache: hits, versioned invalidation, LRU bounds."""

import pytest

from repro.core.database import NepalDB
from repro.plan.cache import LruCache, PlanCache
from repro.plan.planner import Planner, PlannerOptions
from repro.schema.builtin import build_network_schema
from repro.stats.cardinality import CardinalityEstimator
from repro.storage.memgraph.store import MemGraphStore
from repro.temporal.clock import TransactionClock
from tests.conftest import T0, SmallInventory

QUERY = "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()"


@pytest.fixture
def db():
    database = NepalDB(clock=TransactionClock(start=T0))
    SmallInventory(database.store)
    return database


# ---------------------------------------------------------------------------
# LruCache
# ---------------------------------------------------------------------------


def test_lru_eviction_bounds_memory():
    cache = LruCache(max_size=3)
    for index in range(10):
        cache.put(index, f"value-{index}")
    assert len(cache) == 3
    assert cache.counters.evictions == 7
    # The three most recent keys survive.
    assert cache.keys() == [7, 8, 9]


def test_lru_recency_refresh_on_get():
    cache = LruCache(max_size=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes "a"
    cache.put("c", 3)           # evicts "b", the oldest
    assert "a" in cache and "c" in cache and "b" not in cache


def test_lru_counters():
    cache = LruCache(max_size=2)
    assert cache.get("missing") is None
    cache.put("x", 1)
    assert cache.get("x") == 1
    assert cache.counters.misses == 1
    assert cache.counters.hits == 1
    assert cache.clear() == 1
    assert cache.counters.invalidations == 1


def test_lru_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        LruCache(0)


# ---------------------------------------------------------------------------
# PlanCache keying & invalidation
# ---------------------------------------------------------------------------


def _store(name="s"):
    return MemGraphStore(
        build_network_schema(), clock=TransactionClock(start=T0), name=name
    )


def test_plan_cache_hit_on_repeat():
    store = _store()
    estimator = CardinalityEstimator(store)
    options = PlannerOptions()
    cache = PlanCache()
    factory_calls = []

    def compile_program():
        factory_calls.append(1)
        return Planner(store.schema, estimator, options).compile("Host()")

    for _ in range(3):
        key = PlanCache.key_for("Host()", "default", store, estimator, options)
        cache.get_or_compile(key, compile_program)
    assert len(factory_calls) == 1
    assert cache.stats()["hits"] == 2


def test_distinct_stores_never_share_entries():
    """Federated variables on different stores get distinct cache entries,
    even when the stores share a display name and a schema shape."""
    left, right = _store("twin"), _store("twin")
    options = PlannerOptions()
    cache = PlanCache()
    left_key = PlanCache.key_for(
        "Host()", "twin", left, CardinalityEstimator(left), options
    )
    right_key = PlanCache.key_for(
        "Host()", "twin", right, CardinalityEstimator(right), options
    )
    assert left_key != right_key
    cache.store(left_key, "left-program")
    cache.store(right_key, "right-program")
    assert cache.lookup(left_key) == "left-program"
    assert cache.lookup(right_key) == "right-program"
    assert len(cache) == 2


def test_schema_version_changes_key():
    store = _store()
    estimator = CardinalityEstimator(store)
    options = PlannerOptions()
    before = PlanCache.key_for("Host()", "default", store, estimator, options)
    store.schema.define_node("BrandNewClass", parent="NetworkElement")
    after = PlanCache.key_for("Host()", "default", store, estimator, options)
    assert before != after


def test_stats_epoch_changes_key_and_purges_stale_entry():
    store = _store()
    estimator = CardinalityEstimator(store)
    options = PlannerOptions()
    cache = PlanCache()
    before = PlanCache.key_for("Host()", "default", store, estimator, options)
    cache.store(before, "old-plan")
    store.insert_node("Host", {"name": "h"})  # bumps data_version → epoch
    after = PlanCache.key_for("Host()", "default", store, estimator, options)
    assert before != after
    cache.store(after, "new-plan")
    # The stale entry was purged (counted as an invalidation), not leaked.
    assert len(cache) == 1
    assert cache.lookup(before) is None
    assert cache.stats()["invalidations"] == 1


def test_invalidate_by_store_name():
    store = _store()
    estimator = CardinalityEstimator(store)
    options = PlannerOptions()
    cache = PlanCache()
    for name in ("alpha", "beta"):
        cache.store(
            PlanCache.key_for("Host()", name, store, estimator, options), name
        )
    assert cache.invalidate("alpha") == 1
    assert len(cache) == 1
    assert cache.invalidate() == 1
    assert len(cache) == 0


def test_plan_cache_key_template_excludes_versions():
    store = _store()
    estimator = CardinalityEstimator(store)
    options = PlannerOptions()
    before = PlanCache.key_for("Host()", "default", store, estimator, options)
    store.insert_node("Host", {"name": "h"})
    after = PlanCache.key_for("Host()", "default", store, estimator, options)
    assert before.template() == after.template()


# ---------------------------------------------------------------------------
# NepalDB integration
# ---------------------------------------------------------------------------


def test_write_then_requery_returns_fresh_results(db):
    baseline = len(db.query(QUERY).rows)
    assert len(db.query(QUERY).rows) == baseline  # warm hit, same answer
    host = db.insert_node("Host", {"name": "host-new"})
    vm = db.insert_node("VMWare", {"name": "vm-new"})
    db.insert_edge("OnServer", vm, host)
    assert len(db.query(QUERY).rows) == baseline + 1


def test_delete_then_requery_returns_fresh_results(db):
    rows = db.query(QUERY).rows
    victim = rows[0].bindings["P"].source.uid
    db.delete(victim)
    assert len(db.query(QUERY).rows) == len(rows) - 1


def test_schema_change_drops_cached_plans(db):
    db.query(QUERY)
    stats = db.cache_stats()["plan"]
    assert stats["entries"] == 1
    db.schema.define_node("Appliance", parent="NetworkElement")
    db.query(QUERY)
    # The old entry was replaced, not reused: one more miss, no new hit.
    stats = db.cache_stats()["plan"]
    assert stats["misses"] == 2
    assert stats["invalidations"] == 1
    assert stats["entries"] == 1


def test_find_paths_uses_plan_cache(db):
    first = db.find_paths("VM()->OnServer()->Host()")
    second = db.find_paths("VM()->OnServer()->Host()")
    assert [p.key() for p in first] == [p.key() for p in second]
    stats = db.cache_stats()["plan"]
    assert stats["hits"] == 1


def test_federated_stores_isolated_in_cache(db):
    """``PATHS@other`` variables never reuse the default store's plans."""
    other = _store("other")
    other_inv = SmallInventory(other)
    db.attach_store("other", other)
    assert len(db.query(QUERY).rows) == 2
    other.delete_element(other_inv.vm2)
    on_other = (
        "Retrieve P From PATHS@other P Where P MATCHES VM()->OnServer()->Host()"
    )
    assert len(db.query(on_other).rows) == 1
    stats = db.cache_stats()["plan"]
    assert stats["entries"] == 2  # one per store, same RPE text
    # Re-running both still hits the right entries.
    assert len(db.query(QUERY).rows) == 2
    assert len(db.query(on_other).rows) == 1


def test_per_variable_timestamps_stay_correct_across_cache(db):
    """Cached plans are scope-free: `@` timestamps still slice correctly."""
    early = db.clock.now()
    db.clock.advance(100)
    host = db.insert_node("Host", {"name": "late-host"})
    vm = db.insert_node("VMWare", {"name": "late-vm"})
    db.insert_edge("OnServer", vm, host)
    late = db.clock.now()
    current = len(db.query(QUERY).rows)
    past = (
        f"Retrieve P From PATHS P(@{early:.0f}) "
        "Where P MATCHES VM()->OnServer()->Host()"
    )
    present = (
        f"Retrieve P From PATHS P(@{late:.0f}) "
        "Where P MATCHES VM()->OnServer()->Host()"
    )
    assert len(db.query(past).rows) == current - 1
    assert len(db.query(present).rows) == current
    # And again, warm — identical answers from cached plans.
    assert len(db.query(past).rows) == current - 1
    assert len(db.query(present).rows) == current


def test_view_redefinition_invalidates_typecheck(db):
    db.define_view("PLACEMENTS", "VM()->OnServer()->Host()")
    query = "Retrieve P From PLACEMENTS P"
    assert len(db.query(query).rows) == 2
    db.define_view("PLACEMENTS", "ProxyVFC()->OnVM()->VM()")
    assert len(db.query(query).rows) == 1


def test_clear_plan_cache(db):
    db.query(QUERY)
    assert db.clear_plan_cache() == 1
    assert db.cache_stats()["plan"]["entries"] == 0
    assert len(db.query(QUERY).rows) == 2


def test_cache_stats_shape(db):
    db.query(QUERY)
    stats = db.cache_stats()
    for section in ("plan", "parse", "typecheck", "nfa", "timings"):
        assert section in stats
    assert stats["plan"]["max_size"] > 0
    assert "execute" in stats["timings"]
    assert "plan" in stats["timings"]
