"""Explain output mirrors the paper's plan narration."""

import pytest

from repro.plan.explain import explain_program
from repro.plan.planner import Planner, PlannerOptions
from repro.stats.cardinality import CardinalityEstimator
from tests.rpe.util import SCHEMA


@pytest.fixture
def planner():
    return Planner(SCHEMA, CardinalityEstimator())


def test_paper_plan_shape(planner):
    # §5.1's example plan: "Compute VM(id=55)|Docker(id=66); Extend forwards
    # ...; Extend backwards ...".
    program = planner.compile(
        "VNF()->[HostedOn()]{1,3}->(VM(id=55)|Docker(id=66))->[HostedOn()]{1,2}->Host()"
    )
    text = explain_program(program)
    assert "Select[VM(id=55)]" in text
    assert "Select[Docker(id=66)]" in text
    assert "extend forwards by [HostedOn()]{1,2}->Host()" in text
    assert "extend backwards by" in text
    assert "VNF()" in text


def test_forward_only_plan(planner):
    program = planner.compile("VNF(id=1)->ComposedOf()->VFC()")
    text = explain_program(program)
    forwards = text.index("extend forwards")
    backwards = text.index("extend backwards by ε")
    assert forwards < backwards
    assert "(nothing to do)" in text


def test_anchor_cardinality_reported(planner):
    program = planner.compile("Host(id=7)")
    assert "estimated cardinality 1" in explain_program(program)


def test_operators_listed_in_topological_order(planner):
    program = planner.compile("VNF(id=1)->[Vertical()]{1,3}->Host()")
    text = explain_program(program, fuse_blocks=False)
    lines = [line for line in text.splitlines() if "Extend[" in line or "Union[" in line]
    assert len(lines) >= 4


def test_fused_vs_unfused_rendering(planner):
    program = planner.compile("VNF(id=1)->ComposedOf()->VFC()->OnVM()->VM()")
    fused = explain_program(program, fuse_blocks=True)
    unfused = explain_program(program, fuse_blocks=False)
    assert "ExtendBlock[" in fused
    assert "ExtendBlock[" not in unfused
    assert len(unfused.splitlines()) >= len(fused.splitlines())


def test_length_limit_reported():
    planner = Planner(SCHEMA, options=PlannerOptions(max_pathway_elements=9))
    program = planner.compile("VNF(id=1)->[Vertical()]{1,6}->Host()")
    assert "pathway length limit: 9 elements" in explain_program(program)
