"""Query execution: joins, subqueries, temporal semantics, federation."""

import pytest

from repro.errors import FederationError, TemporalError, TypeCheckError
from repro.plan.executor import QueryExecutor
from repro.plan.planner import PlannerOptions
from repro.storage.memgraph.store import MemGraphStore
from repro.temporal.clock import TransactionClock
from tests.conftest import T0, SmallInventory


@pytest.fixture
def executor(mem_store, small_inventory):
    return QueryExecutor({"default": mem_store}), small_inventory


class TestRetrieve:
    def test_paper_first_example(self, executor):
        # "Retrieve P From PATHS P WHERE P MATCHES
        #  VNF()->VFC()->VM()->Host(id=23245)"
        ex, inv = executor
        result = ex.execute(
            f"Retrieve P From PATHS P "
            f"Where P MATCHES VNF()->VFC()->VM()->Host(id={inv.host1})"
        )
        assert len(result) == 1
        pathway = result[0].pathway()
        assert pathway.source.uid == inv.firewall
        assert pathway.target.uid == inv.host1

    def test_results_deduplicated(self, executor):
        ex, inv = executor
        result = ex.execute(
            "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()"
        )
        keys = [row.pathway().key() for row in result]
        assert len(keys) == len(set(keys)) == 2

    def test_multi_variable_retrieve(self, executor):
        ex, inv = executor
        result = ex.execute(
            f"Retrieve P, Q From PATHS P, PATHS Q "
            f"Where P MATCHES VM(id={inv.vm1}) And Q MATCHES VM(id={inv.vm2})"
        )
        assert len(result) == 1
        assert result[0].bindings["P"].source.uid == inv.vm1
        assert result[0].bindings["Q"].source.uid == inv.vm2


class TestSelect:
    def test_projection_with_field_access(self, executor):
        ex, inv = executor
        result = ex.execute(
            "Select source(P).name, target(P).name From PATHS P "
            "Where P MATCHES VM()->OnServer()->Host()"
        )
        rows = set(result.value_rows())
        assert rows == {("vm-1", "host-1"), ("vm-2", "host-2")}

    def test_length_function(self, executor):
        ex, inv = executor
        result = ex.execute(
            f"Select length(P) From PATHS P "
            f"Where P MATCHES VNF()->[Vertical()]{{1,6}}->Host(id={inv.host1})"
        )
        assert result.scalars() == [3]

    def test_columns_named_after_expressions(self, executor):
        ex, _ = executor
        result = ex.execute(
            "Select source(P).name From PATHS P Where P MATCHES Host()"
        )
        assert result.columns == ("source(P).name",)


class TestJoins:
    def test_paper_physical_path_join(self, executor):
        # The §3.4 join: physical path between the hosts implementing two
        # VNFs... here between the hosts hosting vm1 and vm2.
        ex, inv = executor
        result = ex.execute(
            f"Retrieve Phys From PATHS D1, PATHS D2, PATHS Phys "
            f"Where D1 MATCHES VM(id={inv.vm1})->OnServer()->Host() "
            f"And D2 MATCHES VM(id={inv.vm2})->OnServer()->Host() "
            f"And Phys MATCHES [ConnectedTo()]{{1,4}} "
            f"And source(Phys)=target(D1) And target(Phys)=target(D2)"
        )
        assert len(result) >= 1
        for row in result:
            phys = row.pathway("Phys")
            assert phys.source.uid == inv.host1
            assert phys.target.uid == inv.host2

    def test_join_on_equality_of_nodes(self, executor):
        ex, inv = executor
        result = ex.execute(
            "Retrieve P, Q From PATHS P, PATHS Q "
            "Where P MATCHES VFC()->OnVM()->VM() "
            "And Q MATCHES VM()->OnServer()->Host() "
            "And target(P) = source(Q)"
        )
        assert len(result) == 2
        for row in result:
            assert row.bindings["P"].target.uid == row.bindings["Q"].source.uid

    def test_anchor_import_used_for_expensive_variable(
        self, mem_store, small_inventory
    ):
        # Force a tiny import threshold so [ConnectedTo()]{1,4} must import
        # its anchor from the joined variable.
        ex = QueryExecutor(
            {"default": mem_store},
            planner_options=PlannerOptions(import_threshold=1.5),
        )
        inv = small_inventory
        result = ex.execute(
            f"Retrieve Phys From PATHS D1, PATHS Phys "
            f"Where D1 MATCHES VM(id={inv.vm1})->OnServer()->Host() "
            f"And Phys MATCHES [ConnectedTo()]{{1,4}} "
            f"And source(Phys)=target(D1)"
        )
        assert len(result) >= 1
        assert all(r.pathway("Phys").source.uid == inv.host1 for r in result)


class TestSubqueries:
    def test_paper_not_exists(self, executor):
        # VMs that do not host a VFC or VNF (§3.4).  vm1/vm2 host VFCs; an
        # idle VM added here must be the only result.
        ex, inv = executor
        idle = inv.store.insert_node("VMWare", {"name": "idle-vm"})
        result = ex.execute(
            "Retrieve V From PATHS V Where V MATCHES VM() "
            "And NOT EXISTS( Retrieve P from PATHS P "
            "Where P MATCHES (VNF()|VFC())->[HostedOn()]{1,5}->VM() "
            "And target(V) = target(P) )"
        )
        assert {row.pathway().source.uid for row in result} == {idle}

    def test_exists_positive(self, executor):
        ex, inv = executor
        result = ex.execute(
            "Retrieve V From PATHS V Where V MATCHES VM() "
            "And EXISTS( Retrieve P from PATHS P "
            "Where P MATCHES VFC()->OnVM()->VM() And target(V) = target(P) )"
        )
        assert {row.pathway().source.uid for row in result} == {inv.vm1, inv.vm2}


class TestTemporal:
    @pytest.fixture
    def timeline(self, network_schema):
        clock = TransactionClock(start=T0)
        store = MemGraphStore(network_schema, clock=clock)
        inv = SmallInventory(store)
        # t0+100: vm1 migrates from host1 to host2.
        clock.set(T0 + 100)
        store.delete_element(inv.e_vm1_host1)
        migrated = store.insert_edge("OnServer", inv.vm1, inv.host2)
        # t0+200: vm1 turns Red.
        clock.set(T0 + 200)
        store.update_element(inv.vm1, {"status": "Red"})
        executor = QueryExecutor({"default": store})
        return executor, inv, migrated

    def test_time_point_query(self, timeline):
        ex, inv, _ = timeline
        past = ex.execute(
            f"AT {T0 + 50} Retrieve P From PATHS P "
            f"Where P MATCHES VM(id={inv.vm1})->OnServer()->Host()"
        )
        assert [r.pathway().target.uid for r in past] == [inv.host1]
        now = ex.execute(
            f"Retrieve P From PATHS P "
            f"Where P MATCHES VM(id={inv.vm1})->OnServer()->Host()"
        )
        assert [r.pathway().target.uid for r in now] == [inv.host2]

    def test_time_range_returns_maximal_ranges(self, timeline):
        ex, inv, migrated = timeline
        result = ex.execute(
            f"AT {T0 + 10} : {T0 + 1000} Retrieve P From PATHS P "
            f"Where P MATCHES VM(id={inv.vm1})->OnServer()->Host()"
        )
        by_target = {
            row.pathway().target.uid: row.validity for row in result
        }
        assert set(by_target) == {inv.host1, inv.host2}
        old = by_target[inv.host1]
        # Maximal: starts at creation (T0), before the window start.
        assert old.intervals[0].start == T0
        assert old.intervals[0].end == T0 + 100
        new = by_target[inv.host2]
        assert new.intervals[0].start == T0 + 100
        assert new.intervals[0].is_current

    def test_field_change_clips_validity(self, timeline):
        ex, inv, _ = timeline
        result = ex.execute(
            f"AT {T0} : {T0 + 1000} Retrieve P From PATHS P "
            f"Where P MATCHES VM(id={inv.vm1}, status='Green')->OnServer()->Host(id={inv.host2})"
        )
        assert len(result) == 1
        validity = result[0].validity
        # Green only until T0+200.
        assert validity.intervals[-1].end == T0 + 200

    def test_per_variable_timestamps(self, timeline):
        # The §4 join: same VNF on different hosts at different times —
        # here: vm1 on host1 at t0+50 and on host2 at t0+150.
        ex, inv, _ = timeline
        result = ex.execute(
            f"Select source(P) From PATHS P(@{T0 + 50}), PATHS Q(@{T0 + 150}) "
            f"Where P MATCHES VM()->OnServer()->Host(id={inv.host1}) "
            f"And Q MATCHES VM()->OnServer()->Host(id={inv.host2}) "
            f"And source(P) = source(Q)"
        )
        assert [row.values[0].uid for row in result] == [inv.vm1]

    def test_joint_at_requires_coexistence(self, timeline):
        ex, inv, _ = timeline
        # Under a joint AT range, P on host1 and Q on host2 for the same VM
        # never coexist (the migration separates them).
        result = ex.execute(
            f"AT {T0} : {T0 + 1000} Retrieve P, Q From PATHS P, PATHS Q "
            f"Where P MATCHES VM()->OnServer()->Host(id={inv.host1}) "
            f"And Q MATCHES VM()->OnServer()->Host(id={inv.host2}) "
            f"And source(P) = source(Q)"
        )
        assert len(result) == 0

    def test_temporal_aggregates(self, timeline):
        ex, inv, _ = timeline
        first = ex.execute(
            f"FIRST TIME WHEN EXISTS AT {T0 + 10} : {T0 + 1000} "
            f"Retrieve P From PATHS P "
            f"Where P MATCHES VM(id={inv.vm1})->OnServer()->Host(id={inv.host2})"
        )
        assert first.scalars() == [T0 + 100]
        when = ex.execute(
            f"WHEN EXISTS AT {T0 + 10} : {T0 + 1000} "
            f"Retrieve P From PATHS P "
            f"Where P MATCHES VM(id={inv.vm1})->OnServer()->Host()"
        )
        # Covered continuously (host1 until the migration, host2 after).
        assert len(when) == 1

    def test_aggregate_requires_range(self, timeline):
        ex, inv, _ = timeline
        with pytest.raises(TemporalError):
            ex.execute(
                f"FIRST TIME WHEN EXISTS AT {T0 + 10} Retrieve P From PATHS P "
                f"Where P MATCHES VM()"
            )


class TestErrors:
    def test_unknown_store(self, executor):
        ex, _ = executor
        with pytest.raises(FederationError):
            ex.execute("Retrieve P From PATHS@nowhere P Where P MATCHES VM()")

    def test_variable_without_matches(self, executor):
        ex, _ = executor
        with pytest.raises(TypeCheckError, match="without a MATCHES"):
            ex.execute("Retrieve P From PATHS P, PATHS Q Where P MATCHES VM()")

    def test_default_store_must_exist(self, mem_store):
        with pytest.raises(FederationError):
            QueryExecutor({"other": mem_store})

    def test_explain_does_not_execute(self, executor):
        ex, inv = executor
        text = ex.explain(
            f"Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{{1,6}}->Host(id={inv.host1})"
        )
        assert "variable P on store memgraph" in text
        assert "Select[" in text
