"""Planner behaviour: anchoring, bounds, options, explain output."""

import pytest

from repro.errors import PlanningError, UnanchoredQueryError, UnboundedQueryError
from repro.plan.explain import explain_program
from repro.plan.planner import Planner, PlannerOptions
from repro.stats.cardinality import CardinalityEstimator
from tests.rpe.util import SCHEMA


@pytest.fixture
def planner():
    return Planner(SCHEMA, CardinalityEstimator())


def test_compile_from_text(planner):
    program = planner.compile("VNF(id=1)->[Vertical()]{1,6}->Host()")
    assert program.anchor_plan.splits[0].anchor.class_name == "VNF"
    assert program.max_elements == 17
    assert len(program.splits) == 1


def test_unanchored_rejected(planner):
    with pytest.raises(UnanchoredQueryError, match="empty pathway"):
        planner.compile("[VNF()]{0,4}->[Vertical()]{0,4}")


def test_optional_only_blocks_rejected(planner):
    with pytest.raises(UnanchoredQueryError):
        planner.compile("[Vertical()]{0,3}")


def test_max_pathway_elements_limit():
    planner = Planner(
        SCHEMA, options=PlannerOptions(max_pathway_elements=5)
    )
    program = planner.compile("VNF(id=1)->[Vertical()]{1,6}->Host()")
    assert program.max_elements == 5
    with pytest.raises(UnboundedQueryError):
        planner.compile("VNF(id=1)->[Vertical()]{6,6}->Host()")


def test_forced_anchor():
    planner = Planner(SCHEMA, options=PlannerOptions(forced_anchor="Host"))
    program = planner.compile("VNF(id=1)->[Vertical()]{1,6}->Host()")
    assert program.anchor_plan.splits[0].anchor.class_name == "Host"


def test_forced_anchor_must_occur():
    planner = Planner(SCHEMA, options=PlannerOptions(forced_anchor="Router"))
    with pytest.raises(PlanningError, match="does not occur"):
        planner.compile("VNF(id=1)->Host()")


def test_estimator_prefers_id_anchor(mem_store, small_inventory):
    # Several VNFs make the id-pinned Host atom the strictly cheapest anchor.
    for index in range(5):
        mem_store.insert_node("DNS", {"name": f"dns-{index}"})
    planner = Planner(SCHEMA, CardinalityEstimator(mem_store))
    program = planner.compile(f"VNF()->[Vertical()]{{1,6}}->Host(id={small_inventory.host1})")
    assert program.anchor_plan.splits[0].anchor.class_name == "Host"
    assert program.anchor_cost == 1.0


def test_live_statistics_shift_anchor(mem_store):
    # Many hosts, one firewall: the VNF end becomes the cheap anchor even
    # without predicates.
    for index in range(50):
        mem_store.insert_node("Host", {"name": f"h{index}"})
    mem_store.insert_node("Firewall", {"name": "fw"})
    planner = Planner(SCHEMA, CardinalityEstimator(mem_store))
    program = planner.compile("VNF()->[Vertical()]{1,6}->Host()")
    assert program.anchor_plan.splits[0].anchor.class_name == "VNF"


def test_alternation_anchor_produces_multiple_splits(planner):
    program = planner.compile(
        "VNF()->[HostedOn()]{1,3}->(VM(id=55)|Docker(id=66))->[HostedOn()]{1,2}->Host()"
    )
    assert len(program.splits) == 2


def test_explain_mentions_operators(planner):
    program = planner.compile("VNF(id=55)->[OnVM()]{1,5}->VM(id=66)")
    text = explain_program(program)
    assert "Select[" in text
    assert "Extend" in text
    assert "extend forwards" in text
    assert "extend backwards" in text
    assert "pathway length limit" in text


def test_explain_shows_extendblock_fusion(planner):
    program = planner.compile("VNF(id=1)->ComposedOf()->VFC()")
    fused = explain_program(program, fuse_blocks=True)
    unfused = explain_program(program, fuse_blocks=False)
    assert "ExtendBlock[" in fused
    assert "ExtendBlock[" not in unfused
