"""Operator lowering and ExtendBlock fusion (Sections 5.1–5.2)."""

from repro.plan.operators import (
    ExtendBlockOp,
    ExtendOp,
    UnionOp,
    fuse_extend_blocks,
    lower_affix,
)
from repro.rpe.nfa import build_nfa
from tests.rpe.util import rpe


def lowered(text, leading="none", trailing="none"):
    # Lower the way the planner does: through the kind-refined automaton.
    nfa = build_nfa(rpe(text), leading=leading, trailing=trailing)
    return lower_affix(nfa.kind_refined(start_consumer="none"))


def test_atoms_become_extends():
    ops = lowered("OnVM()")
    extends = [op for op in ops if isinstance(op, ExtendOp)]
    assert len(extends) == 1
    assert extends[0].consumes == "edge"
    assert extends[0].atom.class_name == "OnVM"


def test_epsilons_become_unions():
    # "Union operators collect results where multiple paths are possible
    # (Alternation and Repetition) — replacing epsilon transitions."
    ops = lowered("(OnVM()|OnServer())")
    unions = [op for op in ops if isinstance(op, UnionOp)]
    assert unions  # alternation entry/exit epsilons


def test_topological_order():
    # No operator may read a state table that a later operator still writes.
    ops = lowered("VNF()->[Vertical()]{1,3}->Host()")
    for index, op in enumerate(ops):
        later_targets = {other.to_state for other in ops[index + 1:]}
        assert op.from_state not in later_targets


def test_glue_skip_lowered_with_kind():
    ops = lowered("VM()->Host()")
    wildcard_extends = [
        op for op in ops if isinstance(op, ExtendOp) and op.atom is None
    ]
    assert wildcard_extends
    assert all(op.consumes == "edge" for op in wildcard_extends)


class TestFusion:
    def test_linear_chain_fused(self):
        ops = lowered("ComposedOf()->VFC()->OnVM()")
        fused = fuse_extend_blocks(ops)
        blocks = [op for op in fused if isinstance(op, ExtendBlockOp)]
        assert blocks
        longest = max(len(block.steps) for block in blocks)
        assert longest >= 2

    def test_fused_plan_preserves_endpoints(self):
        ops = lowered("ComposedOf()->VFC()")
        fused = fuse_extend_blocks(ops)
        # The overall source/target state structure must be reachable:
        # every block's from/to correspond to real operator chain ends.
        for op in fused:
            if isinstance(op, ExtendBlockOp):
                assert op.from_state == op.steps[0].from_state
                assert op.to_state == op.steps[-1].to_state

    def test_branching_states_not_fused(self):
        # Alternation creates states with multiple in/out arcs; fusion must
        # not swallow them.
        ops = lowered("VNF()->(OnVM()|ComposedOf())->VFC()")
        fused = fuse_extend_blocks(ops)
        # All original consuming transitions must still be represented.
        def count_extends(items):
            total = 0
            for op in items:
                if isinstance(op, ExtendBlockOp):
                    total += len(op.steps)
                elif isinstance(op, ExtendOp):
                    total += 1
            return total

        assert count_extends(fused) == count_extends(ops)

    def test_render(self):
        ops = lowered("ComposedOf()->VFC()")
        fused = fuse_extend_blocks(ops)
        text = " ".join(op.render() for op in fused)
        assert "ExtendBlock[" in text or "Extend[" in text
