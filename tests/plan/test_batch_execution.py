"""Batch-vs-row differential: the vectorized path must be invisible.

The batch engine (CSR snapshots + column operators) is an optimization,
never a semantic: with ``batch_enabled`` flipped, every read surface —
scans, point reads, batched point reads, frontier expansion, full query
results — must come back byte-identical, in the same order, with the
same record objects' values.  That contract is checked here under random
churn across the backend matrix, through pinned snapshots while a writer
churns underneath, and on a replica recovered from the durability log.

The CSR builds on the *second* batch read of an epoch (the first defers
to the row path so write-heavy periods never thrash rebuilds), so every
batch leg below warms with two reads before comparing.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.database import NepalDB
from repro.plan.planner import PlannerOptions
from repro.rpe.parser import parse_rpe
from repro.schema.builtin import build_network_schema
from repro.storage.base import TimeScope
from repro.storage.durable import recover
from repro.storage.memgraph.store import MemGraphStore
from repro.temporal.clock import TransactionClock
from tests.conftest import SmallInventory
from tests.storage.test_backend_equivalence import (
    BACKEND_MATRIX,
    T0,
    _norm_value,
    _ops,
    apply_ops,
    matrix_stores,
    snapshot_of,
)

_choices = st.lists(st.integers(min_value=0, max_value=997), min_size=60, max_size=60)


def engine_of(store):
    """The innermost store carrying the batch engine flag, or None."""
    target = store
    while target is not None:
        if "batch_enabled" in vars(target):
            return target
        target = getattr(target, "_inner", None)
    return None


def warm(store, scope) -> None:
    """Two reads, so the second-read-per-epoch heuristic builds the CSR."""
    bound = parse_rpe(f"{store.schema.classes()[0].name}()").bind(store.schema)
    store.scan_atom(bound, scope)
    store.scan_atom(bound, scope)


def read_surface(store, scope, scan_names, filter_name):
    """Every read surface the executor uses, order-sensitively."""
    schema = store.schema
    scans = []
    for name in scan_names:
        bound = parse_rpe(f"{name}()").bind(schema)
        scans.append((name, store.scan_atom(bound, scope)))
    uids = store.known_uids()
    filters = [schema.resolve(filter_name)]
    per_node = [
        (
            uid,
            store.get_element(uid, scope),
            store.out_edges(uid, scope),
            store.in_edges(uid, scope, filters),
        )
        for uid in uids
    ]
    return (
        scans,
        per_node,
        store.get_many(uids, scope),
        store.out_edges_many(uids, scope),
        store.in_edges_many(uids, scope, filters),
    )


def ordered_rows(result):
    """An order-*sensitive* digest of a query result."""
    return [
        (
            tuple(_norm_value(v) for v in row.values),
            tuple(sorted((name, p.key()) for name, p in row.bindings.items())),
        )
        for row in result.rows
    ]


EQUIV_SCANS = ("Box", "BigBox", "Link", "FastLink")
NETWORK_SCANS = ("VM", "Host", "Vertical")


@settings(max_examples=20, deadline=None)
@given(_ops, _choices)
def test_batch_matches_row_across_matrix_under_churn(ops, choices):
    """Flip the engine flag on every matrix config after random writes:
    batch and row legs must be identical at every scope, and every config
    (including the row-only relational ones) must still agree with the
    batch-warmed memory reference."""
    stores = matrix_stores()
    for store in stores.values():
        apply_ops(store, ops, choices)
    reference = stores[BACKEND_MATRIX[0]]
    final = reference.clock.now()
    scopes = [
        TimeScope.current(),
        TimeScope.at(T0),
        TimeScope.at((T0 + final) / 2),
        TimeScope.between(T0, final + 1),
    ]
    for scope in scopes:
        for config, store in stores.items():
            engine = engine_of(store)
            if engine is None:
                continue
            engine.batch_enabled = True
            warm(store, scope)
            batch_leg = read_surface(store, scope, EQUIV_SCANS, "FastLink")
            engine.batch_enabled = False
            row_leg = read_surface(store, scope, EQUIV_SCANS, "FastLink")
            engine.batch_enabled = True
            assert batch_leg == row_leg, (config, scope)
        expected = snapshot_of(reference, scope)
        for config, store in stores.items():
            assert snapshot_of(store, scope) == expected, (config, scope)


PIN_QUERY = (
    "Select source(P).name, target(P).name "
    "From PATHS P Where P MATCHES VFC()->VM()->Host()"
)


def test_pinned_snapshot_batch_reads_ignore_later_writes():
    """Snapshots pinned before churn must serve identical (pre-churn)
    answers from the batch and row engines, while live reads move on."""
    schema = build_network_schema()
    dbs = {}
    invs = {}
    for leg, enabled in (("batch", True), ("row", False)):
        db = NepalDB(
            schema=schema,
            clock=TransactionClock(start=T0),
            planner_options=PlannerOptions(batch_enabled=enabled),
        )
        invs[leg] = SmallInventory(db.store)
        dbs[leg] = db
    assert engine_of(dbs["batch"].store).batch_enabled
    assert not engine_of(dbs["row"].store).batch_enabled

    # Warm (two runs) so the batch leg's CSR exists before pinning.
    before = {}
    for leg, db in dbs.items():
        db.query(PIN_QUERY)
        before[leg] = ordered_rows(db.query(PIN_QUERY))
    assert before["batch"] == before["row"]
    assert before["batch"]  # the fixed topology does produce pathways

    snaps = {leg: db.snapshot() for leg, db in dbs.items()}

    # Churn both databases identically underneath the open snapshots.
    for leg, db in dbs.items():
        inv = invs[leg]
        db.store.clock.advance(10)
        db.store.update_element(inv.vm1, {"status": "Red"})
        db.store.delete_element(inv.e_vfc2_vm2)
        db.store.insert_node("Host", {"name": "host-3", "cpu_cores": 8})
        db.store.clock.advance(10)

    try:
        for _ in range(2):  # second pass runs on the rebuilt CSR
            pinned = {leg: ordered_rows(snap.query(PIN_QUERY)) for leg, snap in snaps.items()}
            assert pinned["batch"] == pinned["row"]
            assert pinned["batch"] == before["batch"]
        # Direct pinned point reads agree too, record for record.
        uids = dbs["batch"].store.known_uids()
        assert uids == dbs["row"].store.known_uids()
        for scope in (TimeScope.current(), TimeScope.at(T0)):
            got = {
                leg: snap.store.get_many(uids, scope) for leg, snap in snaps.items()
            }
            assert got["batch"] == got["row"]
        # The live stores really did diverge from the pinned view.
        live = {leg: ordered_rows(db.query(PIN_QUERY)) for leg, db in dbs.items()}
        assert live["batch"] == live["row"]
        assert live["batch"] != before["batch"]
    finally:
        for snap in snaps.values():
            snap.close()


def test_recovered_replica_batch_matches_row(tmp_path):
    """A replica rebuilt from the durability log answers identically on
    both engines, and identically to the primary it replicates."""
    schema = build_network_schema()
    db = NepalDB(
        schema=schema,
        clock=TransactionClock(start=T0),
        data_dir=str(tmp_path / "data"),
    )
    inv = SmallInventory(db.store)
    db.store.clock.advance(5)
    db.store.update_element(inv.vm2, {"status": "Yellow"})
    db.store.delete_element(inv.e_fw_vfc2)

    scope = TimeScope.current()
    warm(db.store, scope)
    primary = read_surface(db.store, scope, NETWORK_SCANS, "OnServer")
    db.close()

    replica = MemGraphStore(schema, clock=TransactionClock(start=T0))
    recover(tmp_path / "data", replica)
    engine = engine_of(replica)
    engine.batch_enabled = True
    warm(replica, scope)
    batch_leg = read_surface(replica, scope, NETWORK_SCANS, "OnServer")
    engine.batch_enabled = False
    row_leg = read_surface(replica, scope, NETWORK_SCANS, "OnServer")
    assert batch_leg == row_leg
    assert batch_leg == primary


def test_planner_option_reaches_the_engine_through_wrappers(tmp_path):
    """PlannerOptions(batch_enabled=False) lands on the innermost engine,
    never shadowed onto a delegating wrapper."""
    schema = build_network_schema()
    disabled = NepalDB(
        schema=schema,
        clock=TransactionClock(start=T0),
        data_dir=str(tmp_path / "data"),
        planner_options=PlannerOptions(batch_enabled=False),
    )
    engine = engine_of(disabled.store)
    assert engine is not disabled.store  # there is a DurableStore in between
    assert engine.batch_enabled is False
    assert "batch_enabled" not in vars(disabled.store)
    disabled.close()

    default = NepalDB(schema=schema, clock=TransactionClock(start=T0))
    assert engine_of(default.store).batch_enabled is True
