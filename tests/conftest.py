"""Shared fixtures: schemas, stores, and a small deterministic inventory."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings as hypothesis_settings

from repro.core.database import NepalDB
from repro.schema.builtin import build_network_schema
from repro.schema.registry import Schema
from repro.storage.memgraph.store import MemGraphStore
from repro.storage.relational.store import RelationalStore
from repro.temporal.clock import TransactionClock

# CI runs property tests hard (HYPOTHESIS_PROFILE=ci in the workflow);
# local runs stay quick.  Tests that pin max_examples themselves override
# whichever profile is active.
hypothesis_settings.register_profile("ci", max_examples=200, deadline=None)
hypothesis_settings.register_profile("dev", max_examples=25, deadline=None)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

T0 = 1_000_000.0
"""Base transaction time used by pinned-clock fixtures."""

BACKEND_MATRIX = ("memory", "relational", "memory-chaos", "relational-chaos")
"""Differential-harness configurations: each real backend bare and wrapped
in a zero-fault :class:`FaultInjectingStore` (which must be transparent)."""


def build_matrix_db(config: str, clock: TransactionClock | None = None) -> NepalDB:
    """A NepalDB for one BACKEND_MATRIX configuration."""
    backend, _, decorated = config.partition("-")
    db = NepalDB(backend=backend, clock=clock)
    if decorated == "chaos":
        from repro.storage.chaos import FaultPlan

        db.inject_faults(FaultPlan(seed=0))  # injects nothing: pure decoration
    return db


@pytest.fixture(scope="session")
def network_schema() -> Schema:
    return build_network_schema()


@pytest.fixture
def clock() -> TransactionClock:
    return TransactionClock(start=T0)


@pytest.fixture
def mem_store(network_schema, clock) -> MemGraphStore:
    return MemGraphStore(network_schema, clock=clock)


@pytest.fixture
def rel_store(network_schema, clock) -> RelationalStore:
    return RelationalStore(network_schema, clock=clock)


@pytest.fixture(params=["memory", "relational"])
def any_store(request, network_schema, clock):
    """Parametrized over both backends — behaviour must be identical."""
    if request.param == "memory":
        return MemGraphStore(network_schema, clock=clock)
    return RelationalStore(network_schema, clock=clock)


class SmallInventory:
    """A tiny, fully known topology used by many tests.

    Layout (all edges left-to-right)::

        service-1 -ComposedOf-> fw (Firewall) -ComposedOf-> vfc1 (ProxyVFC)
                                                -ComposedOf-> vfc2 (WebServerVFC)
        vfc1 -OnVM-> vm1 (VMWare) -OnServer-> host1
        vfc2 -OnVM-> vm2 (OnMetal) -OnServer-> host2
        host1 <-ServerSwitch-> tor1 <-SwitchSwitch-> tor2 <-...-> host2
        vm1 <-VmNetwork-> net1 <-VmNetwork-> vm2
    """

    def __init__(self, store):
        self.store = store
        self.service = store.insert_node(
            "Service", {"name": "service-1", "customer": "acme", "service_type": "vpn"}
        )
        self.firewall = store.insert_node(
            "Firewall", {"name": "fw-1", "status": "Green", "ruleset_version": "7"}
        )
        self.vfc1 = store.insert_node("ProxyVFC", {"name": "vfc-1", "status": "Green"})
        self.vfc2 = store.insert_node(
            "WebServerVFC", {"name": "vfc-2", "status": "Yellow"}
        )
        self.vm1 = store.insert_node(
            "VMWare", {"name": "vm-1", "status": "Green", "vcpus": 4}
        )
        self.vm2 = store.insert_node(
            "OnMetal", {"name": "vm-2", "status": "Green", "vcpus": 8}
        )
        self.host1 = store.insert_node(
            "Host", {"name": "host-1", "cpu_cores": 64, "status": "Green"}
        )
        self.host2 = store.insert_node(
            "Host", {"name": "host-2", "cpu_cores": 32, "status": "Green"}
        )
        self.tor1 = store.insert_node("TorSwitch", {"name": "tor-1", "ports": 48})
        self.tor2 = store.insert_node("TorSwitch", {"name": "tor-2", "ports": 48})
        self.net1 = store.insert_node(
            "VirtualNetwork", {"name": "net-1", "cidr": "10.0.0.0/24"}
        )

        self.e_service_fw = store.insert_edge("ComposedOf", self.service, self.firewall)
        self.e_fw_vfc1 = store.insert_edge("ComposedOf", self.firewall, self.vfc1)
        self.e_fw_vfc2 = store.insert_edge("ComposedOf", self.firewall, self.vfc2)
        self.e_vfc1_vm1 = store.insert_edge("OnVM", self.vfc1, self.vm1)
        self.e_vfc2_vm2 = store.insert_edge("OnVM", self.vfc2, self.vm2)
        self.e_vm1_host1 = store.insert_edge("OnServer", self.vm1, self.host1)
        self.e_vm2_host2 = store.insert_edge("OnServer", self.vm2, self.host2)
        store.insert_symmetric_edge(
            "ServerSwitch", self.host1, self.tor1,
            {"server_interface": "eth0", "switch_interface": "ge-0/0"},
        )
        store.insert_symmetric_edge("SwitchSwitch", self.tor1, self.tor2)
        store.insert_symmetric_edge(
            "ServerSwitch", self.host2, self.tor2,
            {"server_interface": "eth0", "switch_interface": "ge-0/1"},
        )
        store.insert_symmetric_edge(
            "VmNetwork", self.vm1, self.net1, {"ip_address": "10.0.0.2"}
        )
        store.insert_symmetric_edge(
            "VmNetwork", self.vm2, self.net1, {"ip_address": "10.0.0.3"}
        )


@pytest.fixture
def small_inventory(mem_store) -> SmallInventory:
    return SmallInventory(mem_store)


@pytest.fixture
def small_inventory_any(any_store) -> SmallInventory:
    return SmallInventory(any_store)
