"""Shared helpers for the concurrency suite."""

from __future__ import annotations

import json

from repro.core.database import NepalDB
from repro.server.app import _result_payload


def result_digest(result) -> str:
    """A byte-exact rendering of a query result (values, bindings, periods).

    Built on the server's JSON rendering so "byte-identical" means the
    same bytes a served client would receive.
    """
    return json.dumps(_result_payload(result), sort_keys=True)


def small_topology(db: NepalDB) -> dict[str, list[int]]:
    """4 hosts, 12 VMs placed round-robin — tiny but query-interesting."""
    hosts = [db.insert_node("Host", {"name": f"h{i}"}) for i in range(4)]
    vms = []
    for i in range(12):
        vm = db.insert_node(
            "VM", {"name": f"v{i}", "status": "Green" if i % 3 else "Amber"}
        )
        db.insert_edge("OnServer", vm, hosts[i % len(hosts)])
        vms.append(vm)
    return {"hosts": hosts, "vms": vms}


CORPUS = [
    "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()",
    "Retrieve P From PATHS P Where P MATCHES VM(status='Green')",
    "Retrieve P From PATHS P Where P MATCHES VM(name='v3')->OnServer()->Host()",
    "Retrieve P From PATHS P Where P MATCHES Host()",
]
