"""The HTTP front end: serving, snapshots over the wire, backpressure."""

from __future__ import annotations

import socket
import time

import pytest

from repro.core.database import NepalDB
from repro.server import NepalClient, NepalServer, ServerConfig, ServerError
from repro.storage.chaos import FaultPlan
from tests.concurrency.conftest import small_topology

VM_PATH = "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()"


def wait_until(condition, message: str, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not condition():
        assert time.monotonic() < deadline, message
        time.sleep(0.01)


@pytest.fixture
def served():
    db = NepalDB()
    handles = small_topology(db)
    with NepalServer(db, ServerConfig(port=0, workers=4, queue_depth=8)) as server:
        yield db, handles, server, NepalClient(*server.address)
    db.close()


class TestRoutes:
    def test_health(self, served):
        db, _, server, client = served
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["capacity"] == 12
        assert payload["workers"] == 4
        assert payload["open_snapshots"] == 0
        assert payload["data_version"] == db.store.data_version

    def test_query_roundtrip(self, served):
        _, _, _, client = served
        payload = client.query(VM_PATH)
        assert payload["columns"] == ["P"]
        assert len(payload["rows"]) == 12
        row = payload["rows"][0]
        assert "VM" in row["values"][0]  # rendered pathway text

    def test_write_roundtrip(self, served):
        db, handles, _, client = served
        uid = client.insert_node("VM", {"name": "over-http"})
        assert isinstance(uid, int)
        client.request(
            "POST", "/write",
            {"op": "insert_edge", "class": "OnServer",
             "source": uid, "target": handles["hosts"][0]},
        )
        assert len(client.query(VM_PATH)["rows"]) == 13
        client.request("POST", "/write", {"op": "update", "uid": uid,
                                          "changes": {"status": "Red"}})
        assert db.store.class_count("VM") == 13
        client.request("POST", "/write", {"op": "delete", "uid": uid})
        assert len(client.query(VM_PATH)["rows"]) == 12

    def test_stats_served(self, served):
        _, _, _, client = served
        client.query(VM_PATH)
        stats = client.stats()
        assert "events" in stats
        assert stats["events"].get("server.queries", 0) >= 1

    def test_error_mapping(self, served):
        _, _, _, client = served
        with pytest.raises(ServerError) as excinfo:
            client.request("GET", "/no-such-route")
        assert excinfo.value.status == 404
        with pytest.raises(ServerError) as excinfo:
            client.request("POST", "/query", {"query": ""})
        assert excinfo.value.status == 400
        with pytest.raises(ServerError) as excinfo:
            client.request("POST", "/write", {"op": "explode"})
        assert excinfo.value.status == 400
        with pytest.raises(ServerError) as excinfo:
            client.query("Retrieve X From NONSENSE")
        assert excinfo.value.status == 400


class TestSnapshotsOverHTTP:
    def test_held_snapshot_freezes_view(self, served):
        db, _, _, client = served
        opened = client.open_snapshot()
        snapshot_id = opened["id"]
        assert opened["data_version"] == db.store.data_version
        assert client.health()["open_snapshots"] == 1

        before = client.query(VM_PATH, snapshot=snapshot_id)
        uid = client.insert_node("VM", {"name": "after-pin"})
        client.request(
            "POST", "/write",
            {"op": "insert_edge", "class": "OnServer", "source": uid, "target": 1},
        )
        pinned = client.query(VM_PATH, snapshot=snapshot_id)
        live = client.query(VM_PATH)
        assert pinned == before
        assert len(live["rows"]) == len(before["rows"]) + 1

        client.close_snapshot(snapshot_id)
        assert client.health()["open_snapshots"] == 0
        with pytest.raises(ServerError) as excinfo:
            client.query(VM_PATH, snapshot=snapshot_id)
        assert excinfo.value.status == 400

    def test_unknown_snapshot_rejected(self, served):
        _, _, _, client = served
        with pytest.raises(ServerError) as excinfo:
            client.query(VM_PATH, snapshot=999)
        assert excinfo.value.status == 400
        with pytest.raises(ServerError) as excinfo:
            client.request("POST", "/snapshot/close", {"id": 999})
        assert excinfo.value.status == 400

    def test_server_stop_closes_held_snapshots(self):
        db = NepalDB()
        small_topology(db)
        server = NepalServer(db, ServerConfig(port=0, workers=2, queue_depth=2))
        server.start()
        client = NepalClient(*server.address)
        client.open_snapshot()
        assert db.write_gate.open_pins() == 1
        server.stop()
        assert db.write_gate.open_pins() == 0
        db.close()


class TestBackpressure:
    def test_admission_control_returns_503(self):
        """capacity 1: an idle open connection holds the only slot, so the
        next request is refused immediately with 503 + Retry-After."""
        db = NepalDB()
        small_topology(db)
        config = ServerConfig(port=0, workers=1, queue_depth=0)
        with NepalServer(db, config) as server:
            client = NepalClient(*server.address, timeout=5.0)
            assert client.health()["capacity"] == 1
            # The health request's server-side bookkeeping finishes after
            # the client sees the response; wait for the slot to free or
            # the squatter below may itself be the one rejected.
            wait_until(lambda: server.inflight == 0, "health slot never drained")

            squatter = socket.create_connection(server.address, timeout=5.0)
            try:
                # The accept loop admits the connection asynchronously;
                # poll until the slot is taken.
                wait_until(lambda: server.inflight >= 1, "squatter never admitted")
                with pytest.raises(ServerError) as excinfo:
                    client.health()
                assert excinfo.value.status == 503
            finally:
                squatter.close()

            # Slot drains once the squatter disconnects.
            deadline = time.monotonic() + 5.0
            while True:
                try:
                    payload = client.health()
                    break
                except ServerError as error:
                    assert error.status == 503
                    assert time.monotonic() < deadline, "slot never drained"
                    time.sleep(0.02)
            assert payload["status"] == "ok"
            assert db.metrics.event_count("server.rejected") >= 1
        db.close()

    def test_deadline_maps_to_504(self):
        """Injected per-read latency + a tiny request deadline: the pinned
        read path must give up cooperatively and surface 504."""
        db = NepalDB()
        small_topology(db)
        db.inject_faults(FaultPlan(seed=0, latency=0.05))
        config = ServerConfig(port=0, workers=2, queue_depth=2, deadline=0.02)
        with NepalServer(db, config) as server:
            client = NepalClient(*server.address, timeout=10.0)
            with pytest.raises(ServerError) as excinfo:
                client.query(VM_PATH)
            assert excinfo.value.status == 504
        assert db.metrics.event_count("server.deadline_exceeded") >= 1
        db.close()

    def test_concurrent_clients_all_serve(self, served):
        import threading

        _, _, server, client = served
        errors: list[BaseException] = []
        counts: list[int] = []

        def hit() -> None:
            try:
                for _ in range(5):
                    counts.append(len(client.query(VM_PATH)["rows"]))
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        workers = [threading.Thread(target=hit) for _ in range(6)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert not worker.is_alive()
        assert not errors, errors[0]
        assert counts == [12] * 30
        assert db_requests(server) >= 30


def db_requests(server: NepalServer) -> int:
    return server.metrics.event_count("server.requests")
