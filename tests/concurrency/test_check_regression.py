"""The bench-smoke regression gate (`benchmarks/check_regression.py`)."""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.check_regression import compare, load_gate, main


def write_payload(path: Path, higher=None, lower=None, extra=None) -> Path:
    payload = {
        "bench": "synthetic",
        **(extra or {}),
        "gate": {
            "higher_is_better": dict(higher or {}),
            "lower_is_better": dict(lower or {}),
        },
    }
    path.write_text(json.dumps(payload))
    return path


def run_gate(tmp_path: Path, current, baseline) -> int:
    baseline_dir = tmp_path / "baselines"
    baseline_dir.mkdir(exist_ok=True)
    current_path = write_payload(tmp_path / "BENCH_x.json", **current)
    write_payload(baseline_dir / "BENCH_x.json", **baseline)
    return main([str(current_path), "--baseline-dir", str(baseline_dir)])


def test_three_x_slower_fails(tmp_path):
    """The acceptance criterion: a synthetic 3x regression exits nonzero."""
    assert run_gate(
        tmp_path,
        current={"higher": {"speedup": 10.0}},
        baseline={"higher": {"speedup": 30.0}},
    ) == 1


def test_lower_is_better_three_x_fails(tmp_path):
    assert run_gate(
        tmp_path,
        current={"lower": {"p99_ms": 30.0}},
        baseline={"lower": {"p99_ms": 10.0}},
    ) == 1


def test_matching_results_pass(tmp_path):
    assert run_gate(
        tmp_path,
        current={"higher": {"speedup": 30.0}, "lower": {"p99_ms": 10.0}},
        baseline={"higher": {"speedup": 30.0}, "lower": {"p99_ms": 10.0}},
    ) == 0


def test_within_tolerance_passes(tmp_path):
    # 1.9x worse in both directions: inside the 2x bar.
    assert run_gate(
        tmp_path,
        current={"higher": {"speedup": 15.8}, "lower": {"p99_ms": 19.0}},
        baseline={"higher": {"speedup": 30.0}, "lower": {"p99_ms": 10.0}},
    ) == 0


def test_collapsed_metric_fails(tmp_path):
    assert run_gate(
        tmp_path,
        current={"higher": {"speedup": 0.0}},
        baseline={"higher": {"speedup": 30.0}},
    ) == 1


def test_missing_gated_metric_fails(tmp_path):
    assert run_gate(
        tmp_path,
        current={"higher": {}},
        baseline={"higher": {"speedup": 30.0}},
    ) == 1


def test_missing_baseline(tmp_path):
    current = write_payload(
        tmp_path / "BENCH_orphan.json", higher={"speedup": 1.0}
    )
    empty = tmp_path / "baselines"
    empty.mkdir()
    args = [str(current), "--baseline-dir", str(empty)]
    assert main(args) == 1
    assert main([*args, "--allow-missing"]) == 0


def test_missing_current_file_fails(tmp_path):
    assert main([str(tmp_path / "BENCH_nowhere.json")]) == 1


def test_compare_reports_direction():
    baseline = {"higher_is_better": {"speedup": 30.0}, "lower_is_better": {}}
    current = {"higher_is_better": {"speedup": 10.0}, "lower_is_better": {}}
    problems = compare("BENCH_x.json", current, baseline, tolerance=2.0)
    assert len(problems) == 1
    assert "3.00x" in problems[0]


def test_committed_baselines_parse():
    """Every committed baseline gates at least one metric."""
    baseline_dir = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    assert len(baselines) >= 3
    for path in baselines:
        gate = load_gate(path)
        gated = sum(len(v) for v in gate.values())
        assert gated >= 1, path.name
