"""Multi-reader/single-writer stress: concurrent replay vs a sequential oracle.

These are the tests CI repeats 20x under pytest-timeout (the `concurrency`
job) — every interleaving must agree with a single-threaded oracle.  Keep
each test well under a second locally so the repetition stays cheap.
"""

from __future__ import annotations

import threading

from repro.core.database import NepalDB
from tests.concurrency.conftest import CORPUS, result_digest, small_topology

READERS = 4
REPLAYS = 15


def join_all(workers: list[threading.Thread], timeout: float = 60.0) -> None:
    for worker in workers:
        worker.join(timeout=timeout)
        assert not worker.is_alive(), f"{worker.name} failed to finish"


def test_pinned_readers_agree_with_sequential_oracle():
    """4 reader threads replay the corpus against a held snapshot while a
    writer churns; every concurrent result must equal the oracle computed
    sequentially before the churn started."""
    db = NepalDB()  # wall clock, like a deployment
    handles = small_topology(db)
    snap = db.snapshot()
    oracle = {text: result_digest(snap.query(text)) for text in CORPUS}

    stop = threading.Event()
    mismatches: list[str] = []
    errors: list[BaseException] = []

    def reader(slot: int) -> None:
        try:
            for _ in range(REPLAYS):
                for text in CORPUS:
                    if result_digest(snap.query(text)) != oracle[text]:
                        mismatches.append(f"reader {slot}: {text}")
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    def writer() -> None:
        try:
            serial = 0
            while not stop.is_set():
                vm = handles["vms"][serial % len(handles["vms"])]
                db.update(vm, {"status": ("Red", "Green", "Amber")[serial % 3]})
                uid = db.insert_node("VM", {"name": f"churn{serial}"})
                db.insert_edge("OnServer", uid, handles["hosts"][0])
                serial += 1
        except BaseException as error:  # noqa: BLE001
            errors.append(error)

    workers = [
        threading.Thread(target=reader, args=(slot,), name=f"reader-{slot}")
        for slot in range(READERS)
    ]
    churn = threading.Thread(target=writer, name="writer")
    churn.start()
    for worker in workers:
        worker.start()
    join_all(workers)
    stop.set()
    join_all([churn])

    assert not errors, errors[0]
    assert not mismatches, mismatches[:5]
    assert db.write_gate.commits > 28  # the writer really ran
    snap.close()
    assert db.write_gate.open_pins() == 0


def test_ephemeral_query_pins_see_consistent_states():
    """Plain db.query under a concurrent writer: each call may see an old
    or new state, but never a torn one — a VM and its placement edge are
    inserted in separate commits, so a path query can lag the node count
    but must never crash or see a path without its endpoints."""
    db = NepalDB()
    handles = small_topology(db)
    stop = threading.Event()
    errors: list[BaseException] = []
    path_text = CORPUS[0]

    def reader() -> None:
        try:
            while not stop.is_set():
                result = db.query(path_text)
                for row in result.rows:
                    pathway = row.values[0]
                    assert len(pathway.elements) == 3
        except BaseException as error:  # noqa: BLE001
            errors.append(error)

    def writer() -> None:
        try:
            for serial in range(120):
                uid = db.insert_node("VM", {"name": f"w{serial}"})
                db.insert_edge("OnServer", uid, handles["hosts"][serial % 4])
                db.delete(uid)
        except BaseException as error:  # noqa: BLE001
            errors.append(error)

    readers = [
        threading.Thread(target=reader, name=f"ereader-{i}") for i in range(READERS)
    ]
    churn = threading.Thread(target=writer, name="ewriter")
    for worker in readers:
        worker.start()
    churn.start()
    join_all([churn])
    stop.set()
    join_all(readers)
    assert not errors, errors[0]


def test_concurrent_writers_serialize_exactly():
    """N writer threads race through the commit gate: every mutation lands,
    uids never collide, and the version/commit counters advance by exactly
    the number of mutations."""
    db = NepalDB()
    threads, inserts = 6, 30
    base_version = db.store.data_version
    base_commits = db.write_gate.commits
    uid_batches: list[list[int]] = [[] for _ in range(threads)]
    errors: list[BaseException] = []

    def writer(slot: int) -> None:
        try:
            for serial in range(inserts):
                uid_batches[slot].append(
                    db.insert_node("VM", {"name": f"t{slot}-{serial}"})
                )
        except BaseException as error:  # noqa: BLE001
            errors.append(error)

    workers = [
        threading.Thread(target=writer, args=(slot,), name=f"writer-{slot}")
        for slot in range(threads)
    ]
    for worker in workers:
        worker.start()
    join_all(workers)

    assert not errors, errors[0]
    all_uids = [uid for batch in uid_batches for uid in batch]
    assert len(set(all_uids)) == threads * inserts
    assert db.store.class_count("VM") == threads * inserts
    assert db.store.data_version == base_version + threads * inserts
    assert db.write_gate.commits == base_commits + threads * inserts


def test_durable_concurrent_writes_recover(tmp_path):
    """Concurrent writers through the WAL, then a clean reopen: recovery
    must see every commit in a replayable order."""
    db = NepalDB(data_dir=str(tmp_path))
    handles = small_topology(db)
    threads, inserts = 4, 15
    errors: list[BaseException] = []

    def writer(slot: int) -> None:
        try:
            for serial in range(inserts):
                uid = db.insert_node("VM", {"name": f"d{slot}-{serial}"})
                db.insert_edge("OnServer", uid, handles["hosts"][slot % 4])
        except BaseException as error:  # noqa: BLE001
            errors.append(error)

    workers = [
        threading.Thread(target=writer, args=(slot,), name=f"dwriter-{slot}")
        for slot in range(threads)
    ]
    for worker in workers:
        worker.start()
    join_all(workers)
    assert not errors, errors[0]

    expected_vms = 12 + threads * inserts
    assert db.store.class_count("VM") == expected_vms
    oracle = {text: result_digest(db.query(text)) for text in CORPUS}
    db.close()

    reopened = NepalDB(data_dir=str(tmp_path))
    try:
        assert reopened.store.class_count("VM") == expected_vms
        for text in CORPUS:
            assert result_digest(reopened.query(text)) == oracle[text], text
    finally:
        reopened.close()


def test_metrics_registry_atomic_under_contention():
    """8 threads x 5000 events: the counter must land exactly at 40000."""
    from repro.stats.metrics import MetricsRegistry

    registry = MetricsRegistry()
    threads, bumps = 8, 5000
    counters = registry.counters("stress")

    def hammer() -> None:
        for _ in range(bumps):
            registry.event("stress.events")
            counters.hit()

    workers = [threading.Thread(target=hammer) for _ in range(threads)]
    for worker in workers:
        worker.start()
    join_all(workers)
    assert registry.event_count("stress.events") == threads * bumps
    assert counters.hits == threads * bumps
