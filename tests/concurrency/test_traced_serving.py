"""Tracing under concurrent serving: isolation, soundness, artifacts.

Many client threads fire traced queries at one server; each response must
carry its own sound span tree (thread confinement means no spans leak
between concurrent traces) and rows identical to an untraced control.

When ``NEPAL_TRACE_DUMP_DIR`` is set (the CI concurrency job sets it and
uploads the directory as an artifact on failure), every captured span
tree is written there as JSON before assertions run, so a failing run
leaves the evidence behind.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core.database import NepalDB
from repro.server import NepalClient, NepalServer, ServerConfig
from tests.concurrency.conftest import small_topology

QUERIES = (
    "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()",
    "Select source(P).name From PATHS P Where P MATCHES VM(status='Green')",
    "Retrieve P From PATHS P Where P MATCHES Host()",
)


def _dump_traces(name: str, traces: list[dict]) -> None:
    dump_dir = os.environ.get("NEPAL_TRACE_DUMP_DIR")
    if not dump_dir:
        return
    target = Path(dump_dir)
    target.mkdir(parents=True, exist_ok=True)
    for trace in traces:
        path = target / f"{name}-{trace['trace_id']}.json"
        path.write_text(json.dumps(trace, indent=2, sort_keys=True))


def _check_span(span: dict, parent: dict | None = None) -> list[str]:
    """Well-formedness of a JSON span tree (mirrors TraceContext.validate)."""
    problems = []
    if span.get("start") is None or span.get("end") is None:
        problems.append(f"span {span['name']} never closed")
        return problems
    if span["end"] < span["start"]:
        problems.append(f"span {span['name']} ends before it starts")
    if parent is not None and (
        span["start"] < parent["start"] or span["end"] > parent["end"]
    ):
        problems.append(f"span {span['name']} escapes parent {parent['name']}")
    previous_start = None
    for child in span.get("children", ()):
        problems.extend(_check_span(child, span))
        if child.get("start") is not None:
            if previous_start is not None and child["start"] < previous_start:
                problems.append(f"children of {span['name']} out of order")
            previous_start = child["start"]
    return problems


@pytest.fixture
def served():
    db = NepalDB()
    small_topology(db)
    with NepalServer(db, ServerConfig(port=0, workers=8, queue_depth=16)) as server:
        yield db, NepalClient(*server.address)
    db.close()


def test_concurrent_traced_queries_are_isolated_and_sound(served):
    db, client = served
    controls = {
        query: client.request("POST", "/query", {"query": query})["rows"]
        for query in QUERIES
    }

    def traced_call(index: int):
        query = QUERIES[index % len(QUERIES)]
        body = client.request("POST", "/query?trace=1", {"query": query})
        return query, body

    with ThreadPoolExecutor(max_workers=8) as pool:
        outcomes = list(pool.map(traced_call, range(24)))

    traces = [body["trace"] for _query, body in outcomes]
    _dump_traces("traced-serving", traces)

    trace_ids = set()
    for query, body in outcomes:
        trace = body["trace"]
        trace_ids.add(trace["trace_id"])
        root = trace["root"]
        assert root is not None, "trace captured no spans"
        problems = _check_span(root)
        assert problems == [], (query, problems)
        assert root["attrs"]["rows_out"] == len(body["rows"])
        assert body["rows"] == controls[query], query
    assert len(trace_ids) == len(outcomes)  # every request traced separately


def test_sampled_slow_log_survives_concurrency(served):
    db, client = served
    db.enable_slow_query_log(threshold=0.0, trace_every=4)

    def call(index: int):
        query = QUERIES[index % len(QUERIES)]
        return client.request("POST", "/query", {"query": query})

    with ThreadPoolExecutor(max_workers=8) as pool:
        list(pool.map(call, range(20)))

    entries = db.slow_queries()
    assert len(entries) == 20
    sampled = [entry for entry in entries if entry["trace"] is not None]
    assert len(sampled) == 5  # every 4th of 20 seen queries
    _dump_traces("slowlog", [entry["trace"] for entry in sampled])
    for entry in sampled:
        assert _check_span(entry["trace"]["root"]) == []
