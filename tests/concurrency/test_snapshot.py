"""ReadSnapshot semantics: pinning, isolation, rewrite rules, lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.database import NepalDB
from repro.core.resilience import ResiliencePolicy
from repro.errors import NepalError, QueryDeadlineExceeded, StorageError
from repro.storage.chaos import FaultPlan
from repro.temporal.clock import TransactionClock
from repro.temporal.interval import FOREVER, Interval
from tests.concurrency.conftest import CORPUS, result_digest, small_topology
from tests.conftest import T0

VM_PATH = "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()"


@pytest.fixture
def db():
    return NepalDB(clock=TransactionClock(start=T0))


class TestIsolation:
    def test_snapshot_does_not_see_later_update(self, db):
        handles = small_topology(db)
        snap = db.snapshot()
        db.clock.advance(10)
        db.update(handles["vms"][0], {"status": "Red"})

        live = db.query("Retrieve P From PATHS P Where P MATCHES VM(status='Red')")
        pinned = snap.query("Retrieve P From PATHS P Where P MATCHES VM(status='Red')")
        assert len(live) == 1
        assert len(pinned) == 0
        snap.close()

    def test_snapshot_does_not_see_later_insert_or_delete(self, db):
        handles = small_topology(db)
        with db.snapshot() as snap:
            before = len(snap.query(VM_PATH))
            db.clock.advance(5)
            db.delete(handles["vms"][1])
            new_vm = db.insert_node("VM", {"name": "late"})
            db.insert_edge("OnServer", new_vm, handles["hosts"][0])
            assert len(snap.query(VM_PATH)) == before
            assert len(db.query(VM_PATH)) == before  # -1 deleted, +1 inserted

    def test_byte_identical_across_concurrent_bulk_write(self, db):
        """The acceptance criterion: a held snapshot's results are the same
        bytes before and after a concurrent bulk write commits."""
        small_topology(db)
        snap = db.snapshot()
        before = {text: result_digest(snap.query(text)) for text in CORPUS}

        def bulk_writer():
            db.clock.advance(30)
            with db.store.bulk():
                for i in range(40):
                    vm = db.store.insert_node("VM", {"name": f"bulk{i}"})
                    db.store.update_element(vm, {"status": "Red"})

        # Through the commit gate, from another thread, like a real writer.
        def committed():
            with db.write_gate.commit(db.clock):
                bulk_writer()

        worker = threading.Thread(target=committed)
        worker.start()
        worker.join(timeout=30)
        assert not worker.is_alive()

        after = {text: result_digest(snap.query(text)) for text in CORPUS}
        assert after == before
        # And the writer's rows are visible to live reads.
        assert len(db.query(VM_PATH)) == len(snap.query(VM_PATH))  # no edges yet
        assert db.store.class_count("VM") == 12 + 40
        snap.close()

    def test_data_version_frozen(self, db):
        handles = small_topology(db)
        snap = db.snapshot()
        pinned_version = snap.data_version
        assert snap.store.data_version == pinned_version
        db.update(handles["vms"][0], {"status": "Red"})
        assert db.store.data_version > pinned_version
        assert snap.store.data_version == pinned_version
        snap.close()

    def test_find_paths_pinned(self, db):
        handles = small_topology(db)
        snap = db.snapshot()
        before = len(snap.find_paths("VM()->OnServer()->Host()"))
        db.clock.advance(5)
        vm = db.insert_node("VM", {"name": "later"})
        db.insert_edge("OnServer", vm, handles["hosts"][0])
        assert len(snap.find_paths("VM()->OnServer()->Host()")) == before
        assert len(db.find_paths("VM()->OnServer()->Host()")) == before + 1
        snap.close()


class TestScopeRewrite:
    def test_future_at_clamps_to_pin(self, db):
        handles = small_topology(db)
        snap = db.snapshot()
        db.clock.advance(100)
        db.update(handles["vms"][0], {"status": "Red"})
        # AT a timestamp after the pin: the snapshot's present IS the pin,
        # so the later version must not leak in.
        red = "VM(status='Red')"
        assert len(snap.find_paths(red, at=T0 + 100)) == 0
        assert len(db.find_paths(red, at=T0 + 100)) == 1
        snap.close()

    def test_historical_at_unaffected(self, db):
        handles = small_topology(db)
        db.clock.advance(50)
        db.update(handles["vms"][0], {"status": "Red"})
        with db.snapshot() as snap:
            # Reads strictly before the pin behave exactly like live ones.
            assert len(snap.find_paths("VM(status='Red')", at=T0)) == 0
            assert len(snap.find_paths("VM(name='v0')", at=T0)) == 1

    def test_range_clipped_to_pin(self, db):
        handles = small_topology(db)
        snap = db.snapshot()
        db.clock.advance(100)
        db.update(handles["vms"][0], {"status": "Red"})
        hits = snap.find_paths("VM(status='Red')", between=(T0, T0 + 1000))
        assert hits == []
        live = db.find_paths("VM(status='Red')", between=(T0, T0 + 1000))
        assert len(live) == 1
        snap.close()


class TestCommitGate:
    def test_commit_stamps_after_open_pin(self, db):
        small_topology(db)
        snap = db.snapshot()
        # Without advancing the clock: the gate must push the stamp past
        # the pin on its own so the new row stays invisible.
        uid = db.insert_node("VM", {"name": "racer"})
        (record,) = db.store.versions(uid, Interval(0.0, FOREVER))
        assert record.period.start > snap.as_of
        assert len(snap.query("Retrieve P From PATHS P Where P MATCHES VM(name='racer')")) == 0
        snap.close()

    def test_no_open_pins_leaves_clock_alone(self, db):
        small_topology(db)
        before = db.clock.now()
        db.insert_node("VM", {"name": "quiet"})
        assert db.clock.now() == before

    def test_pin_refcounting_drains(self, db):
        small_topology(db)
        assert db.write_gate.open_pins() == 0
        first = db.snapshot()
        second = db.snapshot()
        assert db.write_gate.open_pins() == 2
        first.close()
        first.close()  # idempotent
        assert db.write_gate.open_pins() == 1
        second.close()
        assert db.write_gate.open_pins() == 0

    def test_ephemeral_query_pin_released(self, db):
        small_topology(db)
        db.query(VM_PATH)
        assert db.write_gate.open_pins() == 0

    def test_commit_counter_and_metrics(self, db):
        base = db.write_gate.commits
        small_topology(db)  # 4 + 12 inserts + 12 edges
        assert db.write_gate.commits == base + 28
        assert db.metrics.event_count("concurrency.commits") == base + 28


class TestLifecycle:
    def test_snapshot_store_rejects_writes(self, db):
        small_topology(db)
        with db.snapshot() as snap:
            with pytest.raises(StorageError, match="read-only"):
                snap.store.insert_node("VM", {"name": "nope"})
            with pytest.raises(StorageError, match="read-only"):
                snap.store.update_element(1, {"status": "Red"})
            with pytest.raises(StorageError, match="read-only"):
                snap.store.bulk()
            with pytest.raises(StorageError, match="immutable"):
                snap.store.bump_data_version()

    def test_closed_snapshot_raises(self, db):
        small_topology(db)
        snap = db.snapshot()
        snap.close()
        assert snap.closed
        with pytest.raises(NepalError, match="closed"):
            snap.query(VM_PATH)
        with pytest.raises(NepalError, match="closed"):
            snap.find_paths("VM()")
        with pytest.raises(NepalError, match="closed"):
            _ = snap.store

    def test_relational_backend_has_no_snapshots(self):
        db = NepalDB(backend="relational", clock=TransactionClock(start=T0))
        small_topology(db)
        with pytest.raises(NepalError, match="supports snapshots"):
            db.snapshot()
        # Queries still serve (live, no pin).
        assert len(db.query(VM_PATH)) == 12

    def test_snapshot_metrics_events(self, db):
        small_topology(db)
        with db.snapshot():
            pass
        assert db.metrics.event_count("concurrency.snapshot.open") >= 1
        assert db.metrics.event_count("concurrency.snapshot.close") >= 1


class TestDeadlines:
    def test_held_snapshot_rearms_deadline_per_request(self, db):
        """The deadline is a per-request budget, not a lifetime: a snapshot
        held longer than its deadline still serves."""
        small_topology(db)
        with db.snapshot(deadline=0.05) as snap:
            time.sleep(0.08)  # hold the snapshot well past the duration
            assert len(snap.query(VM_PATH)) == 12
            time.sleep(0.08)
            assert len(snap.query(VM_PATH)) == 12

    def test_exhausted_deadline_raises(self, db):
        small_topology(db)
        with db.snapshot(deadline=0.05) as snap:
            # A "clock" that jumps past the armed deadline mid-evaluation.
            ticks = iter([0.0, 100.0])
            snap.view.monotonic = lambda: next(ticks, 100.0)
            with pytest.raises(QueryDeadlineExceeded):
                snap.query(VM_PATH)


class TestResilienceLayering:
    def test_snapshot_reads_through_recoverable_faults(self, db):
        """The pin wraps around the retry guard, so each faulted read is
        retried individually — a whole traversal never becomes one retry
        unit that exhausts the budget."""
        small_topology(db)
        oracle = result_digest(db.query(VM_PATH))
        db.inject_faults(FaultPlan(seed=7, error_rate=0.05))
        db.set_resilience(
            ResiliencePolicy(max_attempts=8, base_delay=0.0, max_delay=0.0, jitter=0.0)
        )
        with db.snapshot() as snap:
            assert result_digest(snap.query(VM_PATH)) == oracle
        assert result_digest(db.query(VM_PATH)) == oracle
