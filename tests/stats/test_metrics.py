"""Unit tests for the cache/timing instrumentation registry."""

import pytest

from repro.stats.metrics import CacheCounters, MetricsRegistry, StageTimings


class TestCacheCounters:
    def test_starts_at_zero(self):
        counters = CacheCounters()
        assert counters.hits == counters.misses == 0
        assert counters.invalidations == counters.evictions == 0
        assert counters.hit_rate == 0.0

    def test_hit_rate(self):
        counters = CacheCounters(hits=3, misses=1)
        assert counters.hit_rate == pytest.approx(0.75)

    def test_snapshot_is_detached(self):
        counters = CacheCounters(hits=2)
        snap = counters.snapshot()
        counters.hits = 99
        assert snap["hits"] == 2
        assert set(snap) >= {"hits", "misses", "invalidations", "evictions", "hit_rate"}

    def test_reset(self):
        counters = CacheCounters(hits=5, misses=4, invalidations=3, evictions=2)
        counters.reset()
        assert counters.snapshot()["hits"] == 0
        assert counters.snapshot()["evictions"] == 0


class TestStageTimings:
    def test_record_accumulates(self):
        timings = StageTimings()
        timings.record("plan", 0.25)
        timings.record("plan", 0.75)
        snap = timings.snapshot()["plan"]
        assert snap["calls"] == 2
        assert snap["seconds"] == pytest.approx(1.0)

    def test_measure_context_manager(self):
        timings = StageTimings()
        with timings.measure("execute"):
            pass
        snap = timings.snapshot()["execute"]
        assert snap["calls"] == 1
        assert snap["seconds"] >= 0.0

    def test_measure_records_on_exception(self):
        timings = StageTimings()
        with pytest.raises(RuntimeError):
            with timings.measure("boom"):
                raise RuntimeError("stage failed")
        assert timings.snapshot()["boom"]["calls"] == 1


class TestMetricsRegistry:
    def test_counters_are_singletons_per_name(self):
        registry = MetricsRegistry()
        registry.counters("plan").hits += 1
        assert registry.counters("plan").hits == 1
        assert registry.counters("other").hits == 0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counters("plan").misses += 2
        registry.timings.record("plan", 0.5)
        snap = registry.snapshot()
        assert snap["caches"]["plan"]["misses"] == 2
        assert snap["timings"]["plan"]["calls"] == 1

    def test_describe_mentions_every_block(self):
        registry = MetricsRegistry()
        registry.counters("plan").hits += 1
        registry.timings.record("execute", 0.001)
        text = registry.describe()
        assert "plan" in text
        assert "execute" in text
