"""Cardinality estimation for anchor costing."""

from repro.rpe.parser import parse_rpe
from repro.stats.cardinality import CardinalityEstimator


def atom(store, text):
    return parse_rpe(text).bind(store.schema)


def test_live_counts_preferred(mem_store):
    for index in range(7):
        mem_store.insert_node("VM", {"name": f"v{index}"})
    estimator = CardinalityEstimator(mem_store)
    assert estimator.estimate(atom(mem_store, "VM()")) == 7.0


def test_schema_hints_fallback(network_schema):
    estimator = CardinalityEstimator()  # no store
    from repro.rpe.parser import parse_rpe as parse

    vm_atom = parse("VM()").bind(network_schema)
    hinted = estimator.estimate(vm_atom)
    # Sum of the expected_count hints over the VM subtree.
    assert hinted == 800 + 500 + 300


def test_empty_store_falls_back_to_hints(mem_store):
    estimator = CardinalityEstimator(mem_store)
    assert estimator.estimate(atom(mem_store, "VM()")) > 100


def test_id_equality_pins_to_one(mem_store):
    for index in range(20):
        mem_store.insert_node("VM", {"name": f"v{index}"})
    estimator = CardinalityEstimator(mem_store)
    assert estimator.estimate(atom(mem_store, "VM(id=3)")) == 1.0


def test_name_equality_near_unique(mem_store):
    for index in range(20):
        mem_store.insert_node("VM", {"name": f"v{index}"})
    estimator = CardinalityEstimator(mem_store)
    assert estimator.estimate(atom(mem_store, "VM(name='v3')")) <= 1.0


def test_predicates_reduce_estimate(mem_store):
    for index in range(30):
        mem_store.insert_node("VM", {"name": f"v{index}", "status": "Green"})
    estimator = CardinalityEstimator(mem_store)
    plain = estimator.estimate(atom(mem_store, "VM()"))
    filtered = estimator.estimate(atom(mem_store, "VM(status='Green')"))
    ranged = estimator.estimate(atom(mem_store, "VM(vcpus>2)"))
    assert filtered < plain
    assert ranged < plain
    assert estimator.estimate(atom(mem_store, "VM(status!='x')")) < plain


def test_estimates_never_zero(mem_store):
    estimator = CardinalityEstimator(mem_store)
    value = estimator.estimate(
        atom(mem_store, "VM(status='a', flavor='b', vcpus=9)")
    )
    assert value >= 0.5


def test_cache_and_invalidate(mem_store):
    estimator = CardinalityEstimator(mem_store)
    epoch = estimator.stats_epoch
    before = estimator.estimate(atom(mem_store, "Host()"))
    # Counts stay cached while the store is unchanged, epoch holds steady.
    assert estimator.estimate(atom(mem_store, "Host()")) == before
    assert estimator.stats_epoch == epoch
    for index in range(50):
        mem_store.insert_node("Host", {"name": f"h{index}"})
    # Store writes bump data_version; the estimator notices on its own and
    # advances the statistics epoch (retiring cached plans keyed on it).
    assert estimator.estimate(atom(mem_store, "Host()")) == 50.0
    assert estimator.stats_epoch > epoch
    # Explicit invalidation still forces a refresh.
    epoch = estimator.stats_epoch
    estimator.invalidate()
    assert estimator.stats_epoch > epoch
    assert estimator.estimate(atom(mem_store, "Host()")) == 50.0
