"""Time-scope-aware cardinality estimation and scope-keyed plan caching.

Historical anchors must be costed with what existed *then*: a churned
inventory can have wildly different class populations at different times,
and anchor choice (§5.1) follows the counts.  The estimator asks the
store's ``class_count_at`` and trusts an indexed answer even when it is
zero — "the class did not exist at t" is information, not missing
statistics — while backends without temporal counts fall back to current
counts and schema hints.
"""

from __future__ import annotations

from repro.plan.cache import PlanCache
from repro.plan.planner import Planner, PlannerOptions
from repro.rpe.parser import parse_rpe
from repro.schema.registry import Schema
from repro.stats.cardinality import CardinalityEstimator
from repro.storage.base import TimeScope
from repro.storage.memgraph.store import MemGraphStore
from repro.storage.relational.store import RelationalStore
from repro.temporal.clock import TransactionClock

T0 = 1_000.0


def build_schema() -> Schema:
    schema = Schema("scoped")
    schema.define_node("Widget", fields={"status": "string"}, expected_count=7)
    schema.define_node("Gadget", fields={"status": "string"})
    return schema


def churned_store() -> MemGraphStore:
    store = MemGraphStore(build_schema(), clock=TransactionClock(start=T0))
    uids = [store.insert_node("Widget", {"status": "up"}) for _ in range(10)]
    store.clock.advance(100)
    for uid in uids[:8]:
        store.delete_element(uid)
    store.clock.advance(100)
    return store


def test_historical_cardinality_reflects_the_past():
    store = churned_store()
    estimator = CardinalityEstimator(store)
    widget = store.schema.resolve("Widget")
    assert estimator.class_cardinality(widget) == 2.0
    assert estimator.class_cardinality(widget, TimeScope.at(T0 + 50)) == 10.0
    assert estimator.class_cardinality(widget, TimeScope.between(T0, T0 + 150)) == 10.0
    assert estimator.class_cardinality(widget, TimeScope.current()) == 2.0


def test_exact_historical_zero_is_trusted_over_hints():
    store = churned_store()
    estimator = CardinalityEstimator(store)
    widget = store.schema.resolve("Widget")
    # Before T0 nothing existed: the indexed answer 0 must NOT fall through
    # to the expected_count hint (7) or the default (1000).
    assert estimator.class_cardinality(widget, TimeScope.at(T0 - 10)) == 0.0
    # A *current* count of zero still means "no statistics" and uses hints.
    gadget = store.schema.resolve("Gadget")
    assert estimator.class_cardinality(gadget) == 1000.0  # no hint, default


def test_backends_without_temporal_counts_fall_back_to_current():
    store = RelationalStore(build_schema(), clock=TransactionClock(start=T0))
    for _ in range(4):
        store.insert_node("Widget", {"status": "up"})
    assert store.class_count_at("Widget", TimeScope.at(T0 - 5)) is None
    estimator = CardinalityEstimator(store)
    widget = store.schema.resolve("Widget")
    assert estimator.class_cardinality(widget, TimeScope.at(T0 - 5)) == 4.0


def test_estimate_threads_scope_through_predicate_selectivities():
    store = churned_store()
    estimator = CardinalityEstimator(store)
    atom = parse_rpe("Widget(status='up')").bind(store.schema)
    # Equality selectivity 0.1 over 2 current widgets floors at 0.5; over
    # the 10 that existed at T0+50 it stays at 1.0.
    assert estimator.estimate(atom) == 0.5
    assert estimator.estimate(atom, TimeScope.at(T0 + 50)) == 1.0


def test_scoped_counts_cached_independently_and_invalidated_together():
    store = churned_store()
    estimator = CardinalityEstimator(store)
    widget = store.schema.resolve("Widget")
    historic = TimeScope.at(T0 + 50)
    assert estimator.class_cardinality(widget, historic) == 10.0
    assert estimator.class_cardinality(widget) == 2.0
    store.insert_node("Widget", {"status": "late"})
    # data_version drift refreshes the epoch and drops *both* cache entries.
    assert estimator.class_cardinality(widget) == 3.0
    assert estimator.class_cardinality(widget, historic) == 10.0


def test_plan_cache_keys_on_scope_kind_not_timestamps():
    store = churned_store()
    estimator = CardinalityEstimator(store)
    options = PlannerOptions()

    def key(scope):
        return PlanCache.key_for("Widget()", "default", store, estimator, options,
                                 scope=scope)

    current = key(TimeScope.current())
    assert current == key(None)
    at_one = key(TimeScope.at(T0 + 1))
    assert at_one != current
    # A timestamp sweep reuses one entry per scope kind...
    assert at_one == key(TimeScope.at(T0 + 999))
    # ...while AT and RANGE stay distinct (different costing regimes).
    assert key(TimeScope.between(T0, T0 + 5)) != at_one
    # Distinct scope kinds are distinct *templates*: storing one must not
    # purge the other as stale.
    cache = PlanCache()
    assert current.template() != at_one.template()


def test_planner_can_flip_anchor_choice_per_scope():
    schema = Schema("flip")
    schema.define_node("Common", fields={})
    schema.define_node("Rare", fields={})
    schema.define_edge("Ties", endpoints=[("Common", "Rare"), ("Rare", "Common")])
    store = MemGraphStore(schema, clock=TransactionClock(start=T0))
    # Then: 12 Rare, 3 Common, 12 Ties.  Now: 1 Rare, 3 Common, 12 Ties
    # (every edge targets the surviving Rare, so deletions cascade nothing).
    rare = [store.insert_node("Rare") for _ in range(12)]
    common = [store.insert_node("Common") for _ in range(3)]
    for i in range(12):
        store.insert_edge("Ties", common[i % 3], rare[-1])
    store.clock.advance(100)
    for uid in rare[:11]:
        store.delete_element(uid)
    store.clock.advance(100)
    planner = Planner(schema, CardinalityEstimator(store))
    rpe = parse_rpe("Common()->Ties()->Rare()").bind(schema)
    now_plan = planner.compile(rpe, bound=True)
    then_plan = planner.compile(rpe, bound=True, scope=TimeScope.at(T0 + 50))
    anchor_of = lambda program: program.anchor_plan.splits[0].anchor.class_name
    assert anchor_of(now_plan) == "Rare"  # 1 current Rare beats 3 Common
    assert anchor_of(then_plan) == "Common"  # 3 beat 12 back then
