"""Golden-file tests for EXPLAIN / EXPLAIN ANALYZE rendering.

Each paper-corpus query is explained against a freshly built seeded
topology (fresh so plan-cache outcomes are deterministically ``miss``)
and the rendering — with timings masked — must match the committed
golden byte for byte.  Refresh after an intentional format change with::

    PYTHONPATH=src python -m pytest tests/observability/test_explain_goldens.py \
        --update-goldens

(or ``NEPAL_UPDATE_GOLDENS=1``) and commit the diff.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.database import NepalDB
from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology
from repro.temporal.clock import TransactionClock
from tests.storage.test_backend_equivalence import PAPER_QUERY_CORPUS, T0

GOLDEN_DIR = Path(__file__).parent / "goldens"

_PARAMS = TopologyParams(
    services=1, vms=12, virtual_networks=4, virtual_routers=2,
    racks=2, hosts_per_rack=2, spine_switches=1, routers=1,
    seed=20180610,
)


def _fresh_db() -> NepalDB:
    db = NepalDB(clock=TransactionClock(start=T0))
    VirtualizedServiceTopology(_PARAMS).apply(db.store)
    return db


def _check_golden(name: str, text: str, update: bool) -> None:
    path = GOLDEN_DIR / name
    rendered = text + "\n"
    if update:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(rendered)
        pytest.skip(f"golden {name} updated")
    assert path.exists(), (
        f"golden file {name} missing — regenerate with pytest --update-goldens"
    )
    assert rendered == path.read_text(), (
        f"{name} drifted — if the format change is intentional, refresh "
        f"with pytest --update-goldens"
    )


@pytest.mark.parametrize("index", range(len(PAPER_QUERY_CORPUS)))
def test_explain_golden(index, update_goldens):
    query = PAPER_QUERY_CORPUS[index]
    _check_golden(f"q{index}_explain.golden", _fresh_db().explain(query), update_goldens)


@pytest.mark.parametrize("index", range(len(PAPER_QUERY_CORPUS)))
def test_explain_analyze_golden(index, update_goldens):
    query = PAPER_QUERY_CORPUS[index]
    analysis = _fresh_db().explain_analyze(query)
    _check_golden(
        f"q{index}_analyze.golden",
        analysis.render(mask_timings=True),
        update_goldens,
    )


def test_textual_explain_prefix_matches_api():
    """``EXPLAIN <q>`` through db.query renders the same plan text."""
    db = _fresh_db()
    query = PAPER_QUERY_CORPUS[0]
    via_prefix = "\n".join(
        row.values[0] for row in db.query(f"EXPLAIN {query}").rows
    )
    assert via_prefix == db.explain(query)


def test_analyze_rendering_is_deterministic():
    """Two masked renderings on fresh databases agree byte for byte."""
    query = PAPER_QUERY_CORPUS[0]
    first = _fresh_db().explain_analyze(query).render(mask_timings=True)
    second = _fresh_db().explain_analyze(query).render(mask_timings=True)
    assert first == second
