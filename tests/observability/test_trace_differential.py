"""Differential guarantee: tracing never changes what a query returns.

The paper-query corpus runs twice — once bare, once under a fresh
:class:`TraceContext` — on every configuration of the backend matrix
(memgraph, relational, and each wrapped in a zero-fault chaos decorator).
Results must be byte-identical: same normalized row digests AND the same
rendered table text.  The recorded trace must itself be sound, and its
root row count must equal the result's.
"""

from __future__ import annotations

import pytest

from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology
from repro.stats.tracing import TraceContext
from repro.temporal.clock import TransactionClock
from tests.conftest import BACKEND_MATRIX, build_matrix_db
from tests.storage.test_backend_equivalence import (
    PAPER_QUERY_CORPUS,
    T0,
    normalized_rows,
)


@pytest.fixture(scope="module")
def trace_matrix():
    """The seeded paper topology in every matrix configuration."""
    params = TopologyParams(
        services=2, vms=40, virtual_networks=10, virtual_routers=4,
        racks=3, hosts_per_rack=3, spine_switches=2, routers=2,
        seed=20180610,
    )
    dbs = {}
    for config in BACKEND_MATRIX:
        db = build_matrix_db(config, clock=TransactionClock(start=T0))
        VirtualizedServiceTopology(params).apply(db.store)
        dbs[config] = db
    return dbs


@pytest.mark.parametrize("config", BACKEND_MATRIX)
@pytest.mark.parametrize("query", PAPER_QUERY_CORPUS)
def test_traced_equals_untraced(trace_matrix, config, query):
    db = trace_matrix[config]
    bare = db.query(query)
    trace = TraceContext(label=query)
    traced = db.query(query, trace=trace)

    assert normalized_rows(traced) == normalized_rows(bare), config
    assert traced.to_table() == bare.to_table(), config
    assert list(traced.columns) == list(bare.columns), config
    assert list(traced.warnings) == list(bare.warnings), config

    assert trace.finished, config
    assert trace.validate() == [], config
    assert trace.root.attrs["rows_out"] == len(bare.rows), config


@pytest.mark.parametrize("config", BACKEND_MATRIX)
def test_explain_analyze_agrees_across_matrix(trace_matrix, config):
    """EXPLAIN ANALYZE actual cardinalities equal a bare re-execution."""
    query = PAPER_QUERY_CORPUS[0]
    db = trace_matrix[config]
    analysis = db.explain_analyze(query)
    bare = db.query(query)
    assert normalized_rows(analysis.result) == normalized_rows(bare), config
    assert analysis.root_rows == len(bare.rows), config
    for name, _store, _scope, _program in analysis.sections:
        assert analysis.actual_rows(name) is not None, (config, name)


def test_chaos_configs_really_injected_nothing(trace_matrix):
    from repro.storage.chaos import FaultInjectingStore

    wrapped = [
        db.store
        for config, db in trace_matrix.items()
        if config.endswith("-chaos")
    ]
    assert len(wrapped) == 2
    for store in wrapped:
        assert isinstance(store, FaultInjectingStore)
        assert store.chaos.total_faults == 0
        assert store.chaos.total_calls > 0
