"""Property tests: traces are well-formed and report what really happened.

Over a pool of representative NPQL queries against the shared small
inventory, every traced execution must produce

* a structurally sound span tree (exactly one root, every span closed,
  child intervals nested inside their parents, children start-ordered);
* a root ``rows_out`` equal to the row count of the result it returned;
* ``EXPLAIN ANALYZE`` actuals identical to a bare untraced re-execution
  of the same query.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.database import NepalDB
from repro.stats.tracing import TraceContext, current_trace
from tests.conftest import SmallInventory
from tests.storage.test_backend_equivalence import normalized_rows

#: Queries chosen to exercise distinct trace shapes: plain scans, chains,
#: variable-length hops, joins between two range variables, NOT EXISTS
#: subqueries, field predicates and alternation anchors.
QUERY_POOL = (
    "Retrieve P From PATHS P Where P MATCHES Host()",
    "Select source(P).name From PATHS P Where P MATCHES VM()",
    "Select source(P).name, target(P).name "
    "From PATHS P Where P MATCHES VNF()->VFC()->VM()->Host()",
    "Retrieve P From PATHS P Where P MATCHES VFC()->[Vertical()]{1,4}->Host()",
    "Select source(P).name From PATHS P Where P MATCHES VM(status='Green')",
    "Retrieve P From PATHS P Where P MATCHES (VMWare()|OnMetal())->OnServer()->Host()",
    "Select source(A).name, source(B).name From PATHS A, PATHS B "
    "Where A MATCHES VFC()->OnVM()->VM() And B MATCHES VM()->OnServer()->Host() "
    "And target(A) = source(B)",
    "Select source(V).name From PATHS V Where V MATCHES VM() "
    "And NOT EXISTS( Retrieve P from PATHS P "
    "Where P MATCHES VFC()->OnVM()->VM() And target(V) = target(P) )",
    "Retrieve P From PATHS P Where P MATCHES Host()->ServerSwitch()->TorSwitch()",
)


def _build_db() -> NepalDB:
    db = NepalDB()
    SmallInventory(db.store)
    return db


#: Module-level database: the property tests only read from it, and
#: Hypothesis forbids function-scoped fixtures inside @given.
DB = _build_db()


@given(query=st.sampled_from(QUERY_POOL))
def test_trace_tree_is_well_formed(query):
    trace = TraceContext(label=query)
    DB.query(query, trace=trace)
    assert trace.finished
    assert trace.validate() == []
    assert trace.root.name == "query"
    # The executor must uninstall the trace on the way out.
    assert current_trace() is None


@given(query=st.sampled_from(QUERY_POOL))
def test_root_rows_out_matches_result(query):
    trace = TraceContext(label=query)
    result = DB.query(query, trace=trace)
    assert trace.root.attrs["rows_out"] == len(result.rows)


@given(query=st.sampled_from(QUERY_POOL))
def test_tracing_does_not_change_results(query):
    traced = DB.query(query, trace=TraceContext())
    bare = DB.query(query)
    assert normalized_rows(traced) == normalized_rows(bare)
    assert traced.to_table() == bare.to_table()


@given(query=st.sampled_from(QUERY_POOL))
def test_explain_analyze_actuals_match_bare_execution(query):
    analysis = DB.explain_analyze(query)
    bare = DB.query(query)
    assert analysis.trace.validate() == []
    assert normalized_rows(analysis.result) == normalized_rows(bare)
    assert analysis.root_rows == len(bare.rows)
    for name, _store, _scope, _program in analysis.sections:
        actual = analysis.actual_rows(name)
        assert actual is not None and actual >= 0
        assert analysis.estimated_rows(name) is not None


@given(query=st.sampled_from(QUERY_POOL))
def test_every_variable_has_plan_and_evaluate_spans(query):
    trace = TraceContext(label=query)
    DB.query(query, trace=trace)
    evaluated = {
        span.attrs["variable"] for span in trace.root.find_all("evaluate")
    }
    planned = {span.attrs["variable"] for span in trace.root.find_all("plan")}
    assert evaluated  # at least one range variable was evaluated
    assert evaluated <= planned  # nothing evaluated without being planned
