"""Unit tests for the tracing primitives: spans, contexts, the no-op
path, the metrics mirror and the slow-query log."""

from __future__ import annotations

import threading

import pytest

from repro.core.database import NepalDB
from repro.stats.metrics import MetricsRegistry
from repro.stats.tracing import (
    NULL_SPAN,
    SlowQueryLog,
    TraceContext,
    current_trace,
    maybe_span,
    next_trace_id,
)


class TestSpanTree:
    def test_first_span_becomes_root(self):
        trace = TraceContext()
        with trace.span("query") as root:
            root.set("a", 1)
        assert trace.root is root
        assert trace.finished
        assert trace.validate() == []

    def test_children_nest_under_innermost_open_span(self):
        trace = TraceContext()
        with trace.span("query"):
            with trace.span("plan"):
                with trace.span("anchor_scan"):
                    pass
            with trace.span("join"):
                pass
        names = [span.name for span in trace.spans()]
        assert names == ["query", "plan", "anchor_scan", "join"]
        assert [c.name for c in trace.root.children] == ["plan", "join"]
        assert trace.root.children[0].children[0].name == "anchor_scan"

    def test_second_root_rejected(self):
        trace = TraceContext()
        with trace.span("query"):
            pass
        with pytest.raises(RuntimeError, match="second root"):
            trace.span("another").__enter__()

    def test_out_of_order_close_rejected(self):
        trace = TraceContext()
        outer = trace.span("outer")
        inner = trace.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_exception_recorded_and_span_closed(self):
        trace = TraceContext()
        with pytest.raises(ValueError):
            with trace.span("query"):
                with trace.span("evaluate"):
                    raise ValueError("boom")
        assert trace.finished
        evaluate = trace.root.find("evaluate")
        assert evaluate.attrs["error"] == "ValueError: boom"
        assert trace.validate() == []

    def test_timings_are_monotonic_and_nested(self):
        trace = TraceContext()
        with trace.span("query"):
            with trace.span("child"):
                pass
        root, child = trace.root, trace.root.children[0]
        assert root.start <= child.start <= child.end <= root.end
        assert child.elapsed >= 0.0

    def test_find_with_attrs_and_find_all(self):
        trace = TraceContext()
        with trace.span("query"):
            with trace.span("evaluate") as span:
                span.set("variable", "P")
            with trace.span("evaluate") as span:
                span.set("variable", "Q")
        assert trace.root.find("evaluate", variable="Q").attrs["variable"] == "Q"
        assert len(trace.root.find_all("evaluate")) == 2
        assert trace.root.find("evaluate", variable="Z") is None

    def test_count_lands_on_innermost_open_span(self):
        trace = TraceContext()
        with trace.span("query"):
            trace.count("outer.events")
            with trace.span("evaluate"):
                trace.count("index.hits", 3)
                trace.count("index.hits", 2)
        assert trace.root.counters == {"outer.events": 1}
        assert trace.root.children[0].counters == {"index.hits": 5}

    def test_count_outside_any_span_is_dropped(self):
        trace = TraceContext()
        trace.count("orphan")  # no open span: silently ignored
        assert trace.root is None

    def test_validate_flags_unclosed_spans(self):
        trace = TraceContext()
        trace.span("query").__enter__()
        problems = trace.validate()
        assert any("still open" in p for p in problems)
        assert any("never closed" in p for p in problems)

    def test_validate_flags_missing_root(self):
        assert TraceContext().validate() == ["trace has no root span"]

    def test_to_dict_is_json_shaped(self):
        trace = TraceContext(label="q")
        with trace.span("query") as root:
            root.set("rows_out", 2)
            root.count("hits", 1)
            with trace.span("child"):
                pass
        payload = trace.to_dict()
        assert payload["trace_id"] == trace.trace_id
        assert payload["root"]["name"] == "query"
        assert payload["root"]["attrs"] == {"rows_out": 2}
        assert payload["root"]["counters"] == {"hits": 1}
        assert payload["root"]["children"][0]["name"] == "child"
        assert payload["root"]["elapsed_ms"] >= 0

    def test_render_masks_timings(self):
        trace = TraceContext()
        with trace.span("query"):
            pass
        masked = trace.render(mask_timings=True)
        assert "[? ms]" in masked
        assert trace.trace_id not in masked


class TestActivation:
    def test_activate_installs_and_restores(self):
        trace = TraceContext()
        assert current_trace() is None
        with trace.activate():
            assert current_trace() is trace
        assert current_trace() is None

    def test_threads_do_not_share_traces(self):
        seen: list[TraceContext | None] = []
        trace = TraceContext()

        def probe():
            seen.append(current_trace())

        with trace.activate():
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen == [None]

    def test_trace_ids_are_unique(self):
        ids = {TraceContext().trace_id for _ in range(50)}
        ids.add(next_trace_id())
        assert len(ids) == 51


class TestNullSpan:
    def test_maybe_span_returns_shared_singleton_when_untraced(self):
        assert maybe_span(None, "anything") is NULL_SPAN
        assert maybe_span(None, "other") is NULL_SPAN

    def test_null_span_accepts_full_api(self):
        with maybe_span(None, "x") as span:
            span.set("k", 1)
            span.count("c")
        assert not span  # falsy: callers can gate extra work on it

    def test_maybe_span_records_when_traced(self):
        trace = TraceContext()
        with maybe_span(trace, "query") as span:
            span.set("k", 1)
        assert trace.root is span
        assert span.attrs == {"k": 1}


class TestMetricsMirror:
    def test_event_lands_on_innermost_span(self):
        metrics = MetricsRegistry()
        trace = TraceContext()
        with trace.activate():
            with trace.span("query"):
                with trace.span("evaluate"):
                    metrics.event("index.temporal.class_hit")
                    metrics.event("index.temporal.class_hit")
        assert trace.root.children[0].counters["index.temporal.class_hit"] == 2
        assert metrics.snapshot()["events"]["index.temporal.class_hit"] == 2

    def test_event_without_trace_only_counts_globally(self):
        metrics = MetricsRegistry()
        metrics.event("lonely")
        assert metrics.snapshot()["events"]["lonely"] == 1

    def test_to_prometheus_exposition(self):
        metrics = MetricsRegistry()
        metrics.event("server.requests", 3)
        metrics.counters("plan").hit()
        metrics.timings.record("parse", 0.25)
        text = metrics.to_prometheus()
        assert text.endswith("\n")
        assert 'nepal_events_total{event="server.requests"} 3' in text
        assert "# TYPE nepal_events_total counter" in text
        assert 'nepal_cache_operations_total{cache="plan",kind="hits"} 1' in text
        assert 'nepal_stage_calls_total{stage="parse"} 1' in text


class TestSlowQueryLog:
    def test_threshold_filters_fast_queries(self):
        log = SlowQueryLog(threshold=0.5, trace_every=0)
        assert not log.observe("q1", elapsed=0.1, rows=1)
        assert log.observe("q2", elapsed=0.9, rows=2)
        entries = log.entries()
        assert [e["query"] for e in entries] == ["q2"]
        assert entries[0]["rows"] == 2
        assert entries[0]["trace_id"] is None

    def test_capacity_bounds_retention(self):
        log = SlowQueryLog(threshold=0.0, capacity=3, trace_every=0)
        for index in range(10):
            log.observe(f"q{index}", elapsed=1.0, rows=0)
        assert [e["query"] for e in log.entries()] == ["q7", "q8", "q9"]
        assert log.stats() == {"seen": 0, "recorded": 10, "retained": 3}

    def test_sampling_cadence(self):
        log = SlowQueryLog(threshold=0.0, trace_every=3)
        decisions = [log.wants_trace() for _ in range(7)]
        assert decisions == [True, False, False, True, False, False, True]

    def test_sampling_disabled(self):
        log = SlowQueryLog(threshold=0.0, trace_every=0)
        assert not any(log.wants_trace() for _ in range(5))

    def test_entry_carries_trace(self):
        log = SlowQueryLog(threshold=0.0, trace_every=1)
        trace = TraceContext()
        with trace.span("query"):
            pass
        log.observe("q", elapsed=1.0, rows=0, trace=trace)
        entry = log.entries()[0]
        assert entry["trace_id"] == trace.trace_id
        assert entry["trace"]["root"]["name"] == "query"

    @pytest.mark.parametrize(
        "kwargs", [{"threshold": -1}, {"capacity": 0}, {"trace_every": -1}]
    )
    def test_constructor_validation(self, kwargs):
        with pytest.raises(ValueError):
            SlowQueryLog(**kwargs)


class TestDatabaseSlowLog:
    def test_enable_observe_disable(self):
        db = NepalDB()
        db.insert_node("Host", {"name": "h"})
        assert db.slow_queries() == []
        db.enable_slow_query_log(threshold=0.0, trace_every=1)
        db.query("Retrieve P From PATHS P Where P MATCHES Host()")
        entries = db.slow_queries()
        assert len(entries) == 1
        assert entries[0]["rows"] == 1
        assert entries[0]["trace"]["root"]["name"] == "query"
        db.disable_slow_query_log()
        assert db.slow_query_log is None
        assert db.slow_queries() == []

    def test_snapshot_queries_feed_the_log_too(self):
        db = NepalDB()
        db.insert_node("Host", {"name": "h"})
        db.enable_slow_query_log(threshold=0.0, trace_every=0)
        with db.snapshot() as snapshot:
            snapshot.query("Retrieve P From PATHS P Where P MATCHES Host()")
        assert len(db.slow_queries()) == 1
