"""HTTP observability surfaces: /metrics, trace headers, ?trace=1, /slowlog."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.core.database import NepalDB
from repro.server import NepalServer, ServerConfig

QUERY = "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()"


@pytest.fixture(scope="module")
def served():
    db = NepalDB()
    host_uid = db.insert_node("Host", {"name": "h1"})
    vm_uid = db.insert_node("VMWare", {"name": "vm1"})
    db.insert_edge("OnServer", vm_uid, host_uid)
    db.enable_slow_query_log(threshold=0.0, trace_every=1)
    with NepalServer(db, ServerConfig(port=0, workers=4)) as server:
        host, port = server.address
        yield db, f"http://{host}:{port}"


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path) as resp:
        return resp.status, dict(resp.headers), resp.read()


def _post(base: str, path: str, payload: dict):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as resp:
        return resp.status, dict(resp.headers), json.loads(resp.read())


def test_metrics_is_prometheus_text(served):
    db, base = served
    _post(base, "/query", {"query": QUERY})  # ensure some counters exist
    status, headers, body = _get(base, "/metrics")
    text = body.decode("utf-8")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    assert "# TYPE nepal_events_total counter" in text
    assert 'nepal_events_total{event="server.requests"}' in text
    assert text.endswith("\n")


def test_every_response_carries_a_trace_id(served):
    db, base = served
    ids = set()
    for path in ("/health", "/stats", "/metrics", "/slowlog"):
        status, headers, _body = _get(base, path)
        assert status == 200
        assert headers["X-Nepal-Trace-Id"], path
        ids.add(headers["X-Nepal-Trace-Id"])
    assert len(ids) == 4  # fresh id per request


def test_errors_carry_a_trace_id_too(served):
    db, base = served
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(base, "/no-such-route")
    assert excinfo.value.code == 404
    assert excinfo.value.headers["X-Nepal-Trace-Id"]


def test_query_trace_param_returns_span_tree(served):
    db, base = served
    status, headers, body = _post(base, "/query?trace=1", {"query": QUERY})
    assert status == 200
    trace = body["trace"]
    assert trace["trace_id"] == headers["X-Nepal-Trace-Id"]
    root = trace["root"]
    assert root["name"] == "query"
    assert root["attrs"]["rows_out"] == len(body["rows"])
    child_names = {child["name"] for child in root["children"]}
    assert {"plan", "evaluate", "join", "project"} <= child_names


def test_query_trace_body_flag(served):
    db, base = served
    _status, headers, body = _post(base, "/query", {"query": QUERY, "trace": True})
    assert body["trace"]["trace_id"] == headers["X-Nepal-Trace-Id"]


def test_untraced_query_has_no_trace_key(served):
    db, base = served
    _status, _headers, body = _post(base, "/query", {"query": QUERY})
    assert "trace" not in body


def test_traced_and_untraced_rows_agree_over_http(served):
    db, base = served
    _s, _h, traced = _post(base, "/query?trace=1", {"query": QUERY})
    _s, _h, bare = _post(base, "/query", {"query": QUERY})
    assert traced["rows"] == bare["rows"]
    assert traced["columns"] == bare["columns"]


def test_explain_analyze_over_http(served):
    db, base = served
    _s, _h, body = _post(base, "/query", {"query": f"EXPLAIN ANALYZE {QUERY}"})
    assert body["columns"] == ["plan"]
    lines = [row["values"][0] for row in body["rows"]]
    assert lines[0].startswith("EXPLAIN ANALYZE")
    assert any(line.startswith("result:") for line in lines)


def test_slowlog_endpoint_reports_served_queries(served):
    db, base = served
    before = len(db.slow_queries())
    _post(base, "/query", {"query": QUERY})
    _status, _headers, body = _get_json(base, "/slowlog")
    assert body["enabled"]
    assert len(body["entries"]) > before
    newest = body["entries"][-1]
    assert newest["query"] == QUERY
    assert newest["trace_id"]  # trace_every=1: every query sampled
    assert body["stats"]["recorded"] >= len(body["entries"])


def _get_json(base: str, path: str):
    status, headers, body = _get(base, path)
    return status, headers, json.loads(body)
