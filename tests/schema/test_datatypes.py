"""Data types: primitives, composites, containers, inheritance, acyclicity."""

import pytest

from repro.errors import DataTypeError, ValidationError
from repro.schema.datatypes import ContainerKind, ContainerType, TypeRegistry


@pytest.fixture
def registry() -> TypeRegistry:
    return TypeRegistry()


class TestPrimitives:
    def test_builtin_lookup_and_aliases(self, registry):
        assert registry.resolve("string").name == "string"
        assert registry.resolve("int").name == "integer"
        assert registry.resolve("double").name == "float"
        assert registry.resolve("bool").name == "boolean"

    def test_string_validation(self, registry):
        t = registry.resolve("string")
        assert t.validate("abc") == "abc"
        with pytest.raises(ValidationError):
            t.validate(5)

    def test_integer_rejects_bool(self, registry):
        # bool is an int subclass in Python; the schema must not accept it.
        with pytest.raises(ValidationError):
            registry.resolve("integer").validate(True)

    def test_float_coerces_int(self, registry):
        assert registry.resolve("float").validate(3) == 3.0

    def test_ipaddress_validation(self, registry):
        t = registry.resolve("ipaddress")
        assert t.validate("10.1.2.3") == "10.1.2.3"
        assert t.validate("::1") == "::1"
        with pytest.raises(ValidationError):
            t.validate("999.1.2.3")

    def test_unknown_type(self, registry):
        with pytest.raises(DataTypeError):
            registry.resolve("quaternion")


class TestComposites:
    def test_define_and_validate(self, registry):
        registry.define(
            "routingTableEntry",
            {"address": "ipaddress", "mask": "integer", "interface": "string"},
        )
        entry = registry.resolve("routingTableEntry")
        value = entry.validate({"address": "10.0.0.0", "mask": 24, "interface": "ge0"})
        assert value == {"address": "10.0.0.0", "mask": 24, "interface": "ge0"}

    def test_unknown_field_rejected(self, registry):
        registry.define("point", {"x": "float", "y": "float"})
        with pytest.raises(ValidationError):
            registry.resolve("point").validate({"x": 1.0, "z": 2.0})

    def test_required_field(self, registry):
        from repro.schema.datatypes import TypedField

        registry.define(
            "pinned", {"key": TypedField("key", registry.resolve("string"), required=True)}
        )
        with pytest.raises(ValidationError):
            registry.resolve("pinned").validate({})

    def test_non_mapping_rejected(self, registry):
        registry.define("point", {"x": "float"})
        with pytest.raises(ValidationError):
            registry.resolve("point").validate([1.0])

    def test_duplicate_definition_rejected(self, registry):
        registry.define("point", {"x": "float"})
        with pytest.raises(DataTypeError):
            registry.define("point", {"y": "float"})
        with pytest.raises(DataTypeError):
            registry.define("string", {})

    def test_inheritance_adds_fields(self, registry):
        registry.define("base", {"a": "string"})
        registry.define("derived", {"b": "integer"}, parent="base")
        derived = registry.resolve("derived")
        assert set(derived.fields) == {"a", "b"}
        assert derived.is_subtype_of(registry.resolve("base"))
        assert not registry.resolve("base").is_subtype_of(derived)

    def test_inheritance_cannot_redefine(self, registry):
        registry.define("base", {"a": "string"})
        with pytest.raises(DataTypeError):
            registry.define("clash", {"a": "integer"}, parent="base")

    def test_parent_must_be_composite(self, registry):
        with pytest.raises(DataTypeError):
            registry.define("weird", {"a": "string"}, parent="integer")

    def test_composition_dag_no_cycles_possible(self, registry):
        # A composite can only reference already-registered types, so a
        # cycle cannot be constructed through the public API.
        registry.define("leaf", {"v": "integer"})
        registry.define("inner", {"leaf": "leaf"})
        registry.define("outer", {"inner": "inner"})
        value = registry.resolve("outer").validate(
            {"inner": {"leaf": {"v": 3}}}
        )
        assert value["inner"]["leaf"]["v"] == 3
        with pytest.raises(DataTypeError):
            registry.resolve("not_yet_defined")


class TestContainers:
    def test_list_syntax(self, registry):
        registry.define("rte", {"address": "ipaddress", "mask": "integer"})
        t = registry.resolve("list[rte]")
        assert isinstance(t, ContainerType)
        assert t.kind is ContainerKind.LIST
        value = t.validate([{"address": "10.0.0.0", "mask": 8}])
        assert value[0]["mask"] == 8

    def test_list_of_primitives(self, registry):
        t = registry.resolve("list[string]")
        assert t.validate(["a", "b"]) == ["a", "b"]
        with pytest.raises(ValidationError):
            t.validate("not-a-list")
        with pytest.raises(ValidationError):
            t.validate([1])

    def test_set_dedupes(self, registry):
        t = registry.resolve("set[integer]")
        assert t.validate([3, 1, 3, 2]) == [3, 1, 2]

    def test_map_requires_string_keys(self, registry):
        t = registry.resolve("map[integer]")
        assert t.validate({"a": 1}) == {"a": 1}
        with pytest.raises(ValidationError):
            t.validate({1: 1})
        with pytest.raises(ValidationError):
            t.validate([("a", 1)])

    def test_nested_containers(self, registry):
        t = registry.resolve("list[list[integer]]")
        assert t.validate([[1], [2, 3]]) == [[1], [2, 3]]

    def test_unknown_container_kind(self, registry):
        with pytest.raises(DataTypeError):
            registry.resolve("bag[string]")
