"""TOSCA-style schema loading and round-tripping."""

import pytest
import yaml

from repro.errors import SchemaError
from repro.schema.tosca import schema_from_tosca, schema_from_tosca_file, schema_to_tosca

DOCUMENT = {
    "schema": "tosca-test",
    "data_types": {
        "routingTableEntry": {
            "properties": {
                "address": "ipaddress",
                "mask": "integer",
                "interface": {"type": "string", "required": True},
            }
        },
    },
    "node_types": {
        "Element": {"abstract": True, "properties": {"status": "string"}},
        "VM": {
            "derived_from": "Container",
            "properties": {"vcpus": "integer"},
        },
        "Container": {"derived_from": "Element", "abstract": True},
        "Host": {
            "derived_from": "Element",
            "properties": {
                "routes": {"type": "list", "entry_schema": "routingTableEntry"},
            },
        },
    },
    "relationship_types": {
        "HostedOn": {
            "valid_endpoints": [["Container", "Host"]],
        },
        "Connects": {"symmetric": True, "valid_endpoints": [["Host", "Host"]]},
    },
}


def test_load_resolves_out_of_order_inheritance():
    # VM is declared before its parent Container: the topological sort
    # must handle it.
    schema = schema_from_tosca(DOCUMENT)
    assert schema.resolve("VM").parent.name == "Container"
    assert schema.resolve("VM").path == "Node:Element:Container:VM"


def test_load_entry_schema_containers():
    schema = schema_from_tosca(DOCUMENT)
    routes = schema.resolve("Host").field("routes")
    assert routes.type.name == "list[routingTableEntry]"


def test_load_endpoints_and_symmetry():
    schema = schema_from_tosca(DOCUMENT)
    hosted = schema.edge_class("HostedOn")
    assert hosted.admits(schema.node_class("VM"), schema.node_class("Host"))
    assert schema.edge_class("Connects").symmetric
    assert not hosted.symmetric


def test_required_property():
    schema = schema_from_tosca(DOCUMENT)
    entry = schema.types.resolve("routingTableEntry")
    assert entry.fields["interface"].required
    assert not entry.fields["mask"].required


def test_cyclic_derivation_rejected():
    bad = {
        "node_types": {
            "A": {"derived_from": "B"},
            "B": {"derived_from": "A"},
        }
    }
    with pytest.raises(SchemaError, match="cyclic or dangling"):
        schema_from_tosca(bad)


def test_dangling_parent_rejected():
    bad = {"node_types": {"A": {"derived_from": "Ghost"}}}
    with pytest.raises(SchemaError):
        schema_from_tosca(bad)


def test_property_without_type_rejected():
    bad = {"node_types": {"A": {"properties": {"x": {"required": True}}}}}
    with pytest.raises(SchemaError, match="missing its type"):
        schema_from_tosca(bad)


def test_non_mapping_document_rejected():
    with pytest.raises(SchemaError):
        schema_from_tosca(["not", "a", "mapping"])


def test_yaml_file_round_trip(tmp_path):
    path = tmp_path / "schema.yaml"
    path.write_text(yaml.safe_dump(DOCUMENT))
    schema = schema_from_tosca_file(path)
    assert schema.name == "tosca-test"
    assert "VM" in schema


def test_export_reimport_preserves_structure():
    schema = schema_from_tosca(DOCUMENT)
    exported = schema_to_tosca(schema)
    reloaded = schema_from_tosca(exported)
    assert {c.name for c in reloaded.classes()} == {c.name for c in schema.classes()}
    assert reloaded.resolve("VM").parent.name == "Container"
    hosted = reloaded.edge_class("HostedOn")
    assert hosted.admits(reloaded.node_class("VM"), reloaded.node_class("Host"))


def test_builtin_schema_survives_tosca_round_trip():
    from repro.schema.builtin import build_network_schema

    original = build_network_schema()
    reloaded = schema_from_tosca(schema_to_tosca(original))
    assert {c.name for c in reloaded.classes()} == {
        c.name for c in original.classes()
    }
    assert reloaded.resolve("VMWare").path == original.resolve("VMWare").path
    assert reloaded.resolve("Router").field("routing_table").type.name == (
        "list[routingTableEntry]"
    )
