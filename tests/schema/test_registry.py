"""Schema registry: class definition, resolution, subtree logic, LCA."""

import pytest

from repro.errors import SchemaError
from repro.schema.classes import least_common_ancestor
from repro.schema.registry import Schema


@pytest.fixture
def schema() -> Schema:
    s = Schema("test")
    s.define_node("Element", abstract=True, fields={"status": "string"})
    s.define_node("Container", parent="Element", abstract=True)
    s.define_node("VM", parent="Container", fields={"vcpus": "integer"})
    s.define_node("VMWare", parent="VM")
    s.define_node("OnMetal", parent="VM")
    s.define_node("Docker", parent="Container")
    s.define_node("Host", parent="Element", fields={"cores": "integer"})
    s.define_edge("Vertical", abstract=True)
    s.define_edge("HostedOn", parent="Vertical", endpoints=[("Container", "Host")])
    s.define_edge("Connects", symmetric=True, endpoints=[("Host", "Host")])
    return s


class TestDefinition:
    def test_path_labels(self, schema):
        assert schema.resolve("VMWare").path == "Node:Element:Container:VM:VMWare"
        assert schema.resolve("HostedOn").path == "Edge:Vertical:HostedOn"

    def test_duplicate_name_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.define_node("VM")

    def test_bad_name_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.define_node("9lives")
        with pytest.raises(SchemaError):
            schema.define_node("has space")

    def test_field_shadowing_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.define_node("BadVM", parent="VM", fields={"status": "integer"})

    def test_node_parent_must_be_node(self, schema):
        with pytest.raises(SchemaError):
            schema.define_node("Weird", parent="Vertical")
        with pytest.raises(SchemaError):
            schema.define_edge("Weirder", parent="VM")


class TestResolution:
    def test_resolve_by_simple_name(self, schema):
        assert schema.resolve("VM").name == "VM"

    def test_resolve_by_path_suffix(self, schema):
        assert schema.resolve("VM:VMWare").name == "VMWare"
        assert schema.resolve("Container:VM").name == "VM"

    def test_wrong_path_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.resolve("Host:VMWare")

    def test_unknown_class(self, schema):
        with pytest.raises(SchemaError):
            schema.resolve("Router")
        assert "Router" not in schema
        assert "VM" in schema

    def test_kind_checked_accessors(self, schema):
        with pytest.raises(SchemaError):
            schema.node_class("HostedOn")
        with pytest.raises(SchemaError):
            schema.edge_class("VM")


class TestHierarchy:
    def test_subtree(self, schema):
        names = [cls.name for cls in schema.resolve("Container").subtree()]
        assert names == ["Container", "VM", "VMWare", "OnMetal", "Docker"]

    def test_concrete_subtree_excludes_abstract(self, schema):
        names = {cls.name for cls in schema.resolve("Element").concrete_subtree()}
        assert names == {"VM", "VMWare", "OnMetal", "Docker", "Host"}

    def test_is_subclass_of(self, schema):
        assert schema.resolve("VMWare").is_subclass_of(schema.resolve("Container"))
        assert not schema.resolve("Docker").is_subclass_of(schema.resolve("VM"))

    def test_fields_inherited(self, schema):
        fields = schema.resolve("VMWare").fields
        assert set(fields) == {"name", "status", "vcpus"}

    def test_least_common_ancestor(self, schema):
        lca = least_common_ancestor(
            [schema.resolve("VMWare"), schema.resolve("Docker")]
        )
        assert lca.name == "Container"
        lca = least_common_ancestor([schema.resolve("VM"), schema.resolve("Host")])
        assert lca.name == "Element"
        assert least_common_ancestor([]) is None

    def test_lca_across_hierarchies_is_none(self, schema):
        assert (
            least_common_ancestor(
                [schema.resolve("VM"), schema.resolve("HostedOn")]
            )
            is None
        )


class TestGraphSchema:
    def test_endpoint_rules_respect_inheritance(self, schema):
        hosted = schema.edge_class("HostedOn")
        assert hosted.admits(schema.node_class("VMWare"), schema.node_class("Host"))
        assert hosted.admits(schema.node_class("Docker"), schema.node_class("Host"))
        assert not hosted.admits(schema.node_class("Host"), schema.node_class("VM"))

    def test_unconstrained_edge_admits_everything(self, schema):
        schema.define_edge("Wildcard")
        wildcard = schema.edge_class("Wildcard")
        assert wildcard.admits(schema.node_class("Host"), schema.node_class("VM"))

    def test_edge_classes_between(self, schema):
        between = schema.edge_classes_between(
            schema.node_class("VM"), schema.node_class("Host")
        )
        assert [cls.name for cls in between] == ["HostedOn"]

    def test_outgoing_edge_classes(self, schema):
        outgoing = {cls.name for cls in schema.outgoing_edge_classes(schema.node_class("VM"))}
        assert outgoing == {"HostedOn"}
        outgoing = {cls.name for cls in schema.outgoing_edge_classes(schema.node_class("Host"))}
        assert outgoing == {"Connects"}

    def test_symmetric_inherited(self, schema):
        schema.define_edge("FastConnects", parent="Connects")
        assert schema.edge_class("FastConnects").symmetric
        assert not schema.edge_class("HostedOn").symmetric


class TestValidation:
    def test_valid_schema_passes(self, schema):
        schema.validate()

    def test_describe_renders_hierarchy(self, schema):
        text = schema.describe()
        assert "VMWare" in text
        assert "(abstract)" in text
        assert "vcpus:integer" in text


class TestConcreteNamesMemo:
    def test_matches_concrete_subtree(self, schema):
        vm = schema.resolve("VM")
        assert schema.concrete_names(vm) == tuple(
            cls.name for cls in vm.concrete_subtree()
        )
        assert schema.concrete_names(vm) == ("VM", "VMWare", "OnMetal")

    def test_memoized_until_schema_evolves(self, schema):
        vm = schema.resolve("VM")
        first = schema.concrete_names(vm)
        assert schema.concrete_names(vm) is first  # cached tuple identity
        schema.define_node("Xen", parent="VM")
        widened = schema.concrete_names(vm)
        assert widened is not first
        assert "Xen" in widened

    def test_touch_flushes_the_memo(self, schema):
        host = schema.resolve("Host")
        first = schema.concrete_names(host)
        schema.touch()
        assert schema.concrete_names(host) == first
        assert schema.concrete_names(host) is not first
