"""Direct tests of the class-model primitives."""

import pytest

from repro.errors import SchemaError
from repro.schema.classes import (
    EdgeClass,
    EndpointRule,
    NodeClass,
    field_value_key,
    least_common_ancestor,
    make_roots,
)


@pytest.fixture
def roots():
    return make_roots()


def test_roots_are_abstract_with_name_field(roots):
    node_root, edge_root = roots
    assert node_root.abstract and edge_root.abstract
    assert "name" in node_root.fields
    assert node_root.path == "Node"
    assert edge_root.kind == "edge" and node_root.kind == "node"


def test_invalid_names_rejected(roots):
    node_root, _ = roots
    with pytest.raises(SchemaError):
        NodeClass("1bad", parent=node_root)
    with pytest.raises(SchemaError):
        NodeClass("has space", parent=node_root)
    with pytest.raises(SchemaError):
        NodeClass("", parent=node_root)


def test_children_and_subtree_order(roots):
    node_root, _ = roots
    a = NodeClass("A", parent=node_root)
    a1 = NodeClass("A1", parent=a)
    a2 = NodeClass("A2", parent=a)
    assert a.children == (a1, a2)
    assert [c.name for c in a.subtree()] == ["A", "A1", "A2"]
    assert [c.name for c in node_root.ancestors()] == ["Node"]
    assert [c.name for c in a1.ancestors()] == ["A1", "A", "Node"]


def test_endpoint_rule_admits_subclasses(roots):
    node_root, edge_root = roots
    container = NodeClass("Container", parent=node_root, abstract=True)
    vm = NodeClass("VM", parent=container)
    host = NodeClass("Host", parent=node_root)
    rule = EndpointRule(container, host)
    assert rule.admits(vm, host)
    assert rule.admits(container, host)
    assert not rule.admits(host, vm)


def test_edge_endpoint_rules_inherit_and_narrow(roots):
    node_root, edge_root = roots
    a = NodeClass("A", parent=node_root)
    b = NodeClass("B", parent=node_root)
    base = EdgeClass("Base", parent=edge_root, endpoints=(EndpointRule(a, b),))
    child = EdgeClass("Child", parent=base)
    # Child inherits the parent's rules.
    assert child.admits(a, b)
    assert not child.admits(b, a)
    widened = EdgeClass("Widened", parent=base, endpoints=(EndpointRule(b, a),))
    assert widened.admits(b, a) and widened.admits(a, b)


def test_symmetric_flag_inheritance(roots):
    _, edge_root = roots
    base = EdgeClass("Conn", parent=edge_root, symmetric=True)
    child = EdgeClass("Fast", parent=base)
    overridden = EdgeClass("OneWay", parent=base, symmetric=False)
    assert base.symmetric and child.symmetric
    assert not overridden.symmetric
    assert not edge_root.symmetric


def test_lca_edge_cases(roots):
    node_root, _ = roots
    a = NodeClass("A", parent=node_root)
    b = NodeClass("B", parent=a)
    assert least_common_ancestor([b]) is b
    assert least_common_ancestor([a, b]) is a
    assert least_common_ancestor([]) is None


def test_field_value_key_hashable():
    key = field_value_key({"a": [1, 2], "b": {"c": 3}})
    assert hash(key) == hash(field_value_key({"b": {"c": 3}, "a": [1, 2]}))
    assert field_value_key(5) == 5
    assert field_value_key([1, [2]]) == (1, (2,))
