"""Record validation: the strong typing that keeps garbage out (§6.1)."""

import pytest

from repro.errors import ValidationError
from repro.schema.builtin import build_network_schema
from repro.schema.validate import (
    check_atom_fields,
    validate_edge_endpoints,
    validate_fields,
)


@pytest.fixture(scope="module")
def schema():
    return build_network_schema()


class TestFieldValidation:
    def test_valid_fields_normalized(self, schema):
        fields = validate_fields(
            schema.resolve("VMWare"), {"name": "vm-1", "vcpus": 4, "status": "Green"}
        )
        assert fields == {"name": "vm-1", "vcpus": 4, "status": "Green"}

    def test_unknown_field_rejected(self, schema):
        with pytest.raises(ValidationError, match="unknown fields"):
            validate_fields(schema.resolve("Host"), {"name": "h", "colour": "red"})

    def test_unknown_field_dropped_when_lenient(self, schema):
        fields = validate_fields(
            schema.resolve("Host"), {"name": "h", "colour": "red"}, strict=False
        )
        assert fields == {"name": "h"}

    def test_wrong_type_rejected(self, schema):
        with pytest.raises(ValidationError):
            validate_fields(schema.resolve("VMWare"), {"vcpus": "four"})

    def test_abstract_class_not_instantiable(self, schema):
        with pytest.raises(ValidationError, match="abstract"):
            validate_fields(schema.resolve("VNF"), {"name": "x"})

    def test_structured_field_validated(self, schema):
        fields = validate_fields(
            schema.resolve("Router"),
            {"routing_table": [{"address": "10.0.0.0", "mask": 8, "interface": "ge0"}]},
        )
        assert fields["routing_table"][0]["mask"] == 8
        with pytest.raises(ValidationError):
            validate_fields(
                schema.resolve("Router"),
                {"routing_table": [{"address": "not-an-ip", "mask": 8}]},
            )


class TestEdgeEndpoints:
    def test_allowed_edge_passes(self, schema):
        validate_edge_endpoints(
            schema,
            schema.edge_class("OnServer"),
            schema.node_class("VMWare"),
            schema.node_class("Host"),
        )

    def test_figure3_rule_vnf_not_on_server(self, schema):
        with pytest.raises(ValidationError, match="does not admit"):
            validate_edge_endpoints(
                schema,
                schema.edge_class("OnServer"),
                schema.node_class("Firewall"),
                schema.node_class("Host"),
            )


class TestAtomFields:
    def test_known_fields_pass(self, schema):
        check_atom_fields(schema.resolve("VM"), ["status", "vcpus", "name"])

    def test_subclass_only_field_rejected_on_parent_atom(self, schema):
        # VM(...) may match Firewall? No — this checks that an atom over VM
        # cannot reference a VMWare-only field; only VM fields are legal.
        with pytest.raises(ValidationError, match="unknown field"):
            check_atom_fields(schema.resolve("Container"), ["vcpus"])
