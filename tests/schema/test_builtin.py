"""The built-in ONAP network schema reproduces Figure 3's structure."""

import pytest

from repro.schema.builtin import build_network_schema


@pytest.fixture(scope="module")
def schema():
    return build_network_schema()


def test_paper_example_vm_subclasses(schema):
    # "The schema might have two different kinds of VMs, VM:VMWare and
    # VM:OnMetal" (§3.3).
    vm = schema.resolve("VM")
    names = {cls.name for cls in vm.subtree()}
    assert {"VM", "VMWare", "OnMetal"} <= names
    # "VM might be subclassed from Container, with sibling Container:Docker"
    container = schema.resolve("Container")
    assert vm.is_subclass_of(container)
    docker = schema.resolve("Docker")
    assert docker.is_subclass_of(container)
    assert not docker.is_subclass_of(vm)


def test_vertical_edge_family(schema):
    # composed_of and hosted_on both derive from Vertical (Figure 3).
    vertical = schema.resolve("Vertical")
    for name in ("ComposedOf", "OnVM", "OnServer"):
        assert schema.resolve(name).is_subclass_of(vertical)
    assert schema.resolve("OnVM").is_subclass_of(schema.resolve("HostedOn"))


def test_connected_to_extensions(schema):
    # "ConnectedTo:ServerSwitch ... adds fields ServerInterface and
    # SwitchInterface while ConnectedTo:VmRouter extends ConnectedTo by
    # adding field IpAddress" (§3.2).
    server_switch = schema.resolve("ServerSwitch")
    assert {"server_interface", "switch_interface"} <= set(server_switch.own_fields)
    vm_network = schema.resolve("VmNetwork")
    assert "ip_address" in vm_network.own_fields
    connected = schema.resolve("ConnectedTo")
    assert server_switch.is_subclass_of(connected)
    assert vm_network.is_subclass_of(connected)


def test_no_direct_vnf_to_host_edge(schema):
    # "one cannot directly link a VNF to a physical_server as no such edge
    # is permitted by the graph schema" (Figure 3 caption).
    vnf = schema.node_class("DNS")
    host = schema.node_class("Host")
    assert schema.edge_classes_between(vnf, host) == []


def test_vnf_to_host_reachable_through_vertical_chain(schema):
    # VNF -> VFC (ComposedOf), VFC -> VM (OnVM), VM -> Host (OnServer).
    vnf, vfc = schema.node_class("Firewall"), schema.node_class("ProxyVFC")
    vm, host = schema.node_class("VMWare"), schema.node_class("Host")
    assert any(
        cls.name == "ComposedOf" for cls in schema.edge_classes_between(vnf, vfc)
    )
    assert any(cls.name == "OnVM" for cls in schema.edge_classes_between(vfc, vm))
    assert any(cls.name == "OnServer" for cls in schema.edge_classes_between(vm, host))


def test_router_routing_table_structure(schema):
    # §3.2.1's structured-data example.
    router = schema.resolve("Router")
    table_field = router.field("routing_table")
    assert table_field.type.name == "list[routingTableEntry]"
    entry = schema.types.resolve("routingTableEntry")
    assert set(entry.fields) == {"address", "mask", "interface"}


def test_connectivity_classes_are_symmetric(schema):
    for name in ("ServerSwitch", "SwitchSwitch", "VmNetwork", "NetworkVRouter"):
        assert schema.edge_class(name).symmetric, name
    for name in ("ComposedOf", "OnVM", "OnServer", "FlowsTo"):
        assert not schema.edge_class(name).symmetric, name


def test_generalization_counts(schema):
    # Query-time generalization has real work: these abstractions each cover
    # several concrete classes.
    assert len(schema.resolve("VNF").concrete_subtree()) >= 4
    assert len(schema.resolve("VFC").concrete_subtree()) >= 4
    assert len(schema.resolve("ConnectedTo").concrete_subtree()) >= 6
    assert len(schema.resolve("Vertical").concrete_subtree()) >= 3


def test_schema_validates(schema):
    schema.validate()
