"""Workload samplers produce the paper's instance streams."""

from repro.inventory.legacy import LegacyParams, LegacyTopology, build_legacy_schema
from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology
from repro.inventory.workload import table1_workload, table2_workload
from repro.storage.memgraph.store import MemGraphStore
from repro.schema.builtin import build_network_schema
from repro.temporal.clock import TransactionClock


def service_handles():
    store = MemGraphStore(build_network_schema(), clock=TransactionClock(start=1.0))
    params = TopologyParams(
        services=3, vms=50, virtual_networks=12, virtual_routers=4,
        racks=3, hosts_per_rack=3, seed=20180610,
    )
    return VirtualizedServiceTopology(params).apply(store)


def legacy_handles(subclassed):
    store = MemGraphStore(build_legacy_schema(subclassed), clock=TransactionClock(start=1.0))
    params = LegacyParams(
        chains=120, core_nodes=4, aggregation_nodes=8, sites=3,
        noise_hubs=2, noise_edges_per_hub=30, agg_noise_edges=40,
        seed=20180611,
    )
    return LegacyTopology(params, subclassed=subclassed).apply(store)


class TestTable1Workload:
    def test_five_query_types(self):
        workload = table1_workload(service_handles(), instances=10, seed=4711)
        assert set(workload) == {
            "top-down", "bottom-up", "VM-VM (4)", "Host-Host (4)", "Host-Host (6)",
        }

    def test_top_down_covers_every_vnf(self):
        # "there are only 33 distinct VNFs so we evaluated only 33 queries".
        handles = service_handles()
        workload = table1_workload(handles, instances=50, seed=4711)
        assert len(workload["top-down"]) == len(handles.vnfs)

    def test_instance_counts_capped_by_population(self):
        handles = service_handles()
        workload = table1_workload(handles, instances=7, seed=4711)
        assert len(workload["VM-VM (4)"]) == 7
        assert len(workload["Host-Host (4)"]) == 7

    def test_instances_are_deterministic(self):
        handles = service_handles()
        first = table1_workload(handles, instances=5, seed=1)
        second = table1_workload(handles, instances=5, seed=1)
        assert first == second
        shuffled = table1_workload(handles, instances=5, seed=2)
        assert shuffled != first

    def test_rpe_shapes(self):
        workload = table1_workload(service_handles(), instances=3, seed=4711)
        assert "[Vertical()]{1,6}" in workload["top-down"][0].rpe
        assert workload["top-down"][0].rpe.startswith("VNF(id=")
        assert workload["bottom-up"][0].rpe.endswith(")")
        assert "{1,6}" in workload["Host-Host (6)"][0].rpe


class TestTable2Workload:
    def test_flat_variant_uses_field_predicates(self):
        workload = table2_workload(
            legacy_handles(False), subclassed=False, instances=4, seed=4712
        )
        assert "GenericEdge(category='circuit')" in workload["service path"][0].rpe
        assert "GenericEdge(category='vertical')" in workload["bottom-up"][0].rpe

    def test_subclassed_variant_uses_concept_atoms(self):
        workload = table2_workload(
            legacy_handles(True), subclassed=True, instances=4, seed=4712
        )
        assert "CircuitEdge()" in workload["service path"][0].rpe
        assert "VerticalEdge()" in workload["bottom-up"][0].rpe

    def test_bottom_up_mixes_hubs_and_regular_cards(self):
        handles = legacy_handles(True)
        workload = table2_workload(handles, subclassed=True, instances=6, seed=4712)
        targets = {
            int(instance.rpe.rsplit("id=", 1)[1].rstrip(")"))
            for instance in workload["bottom-up"]
        }
        assert targets & set(handles.hub_cards)
        assert targets - set(handles.hub_cards)

    def test_reverse_anchors_at_cores(self):
        handles = legacy_handles(True)
        workload = table2_workload(handles, subclassed=True, instances=3, seed=4712)
        for instance in workload["reverse path"]:
            target = int(instance.rpe.rsplit("id=", 1)[1].rstrip(")"))
            assert target in handles.chain_cores
