"""Legacy topology generator and its two schema variants (§6)."""

import pytest

from repro.inventory.legacy import (
    ALL_TYPES,
    CIRCUIT_TYPES,
    NOISE_TYPES,
    VERTICAL_TYPES,
    LegacyParams,
    LegacyTopology,
    build_legacy_schema,
    type_class_name,
)
from repro.inventory.workload import table2_workload
from repro.plan.planner import Planner
from repro.stats.cardinality import CardinalityEstimator
from repro.storage.base import TimeScope
from repro.storage.memgraph.store import MemGraphStore
from repro.temporal.clock import TransactionClock

CURRENT = TimeScope.current()

SMALL = LegacyParams(
    chains=60, core_nodes=5, aggregation_nodes=12, sites=4,
    noise_hubs=2, noise_edges_per_hub=150, agg_noise_edges=100,
    seed=20180611,
)


def build(subclassed: bool):
    store = MemGraphStore(
        build_legacy_schema(subclassed), clock=TransactionClock(start=1.0)
    )
    handles = LegacyTopology(SMALL, subclassed=subclassed).apply(store)
    return store, handles


def test_sixty_six_edge_types():
    # The paper created 66 subclasses, one per type_indicator value.
    assert len(ALL_TYPES) == 66
    assert len(CIRCUIT_TYPES) + len(VERTICAL_TYPES) + len(NOISE_TYPES) == 66


def test_flat_schema_single_classes():
    schema = build_legacy_schema(False)
    assert len(schema.node_root.concrete_subtree()) == 1
    assert len(schema.edge_root.concrete_subtree()) == 1


def test_subclassed_schema_has_one_class_per_type():
    schema = build_legacy_schema(True)
    concrete = schema.edge_root.concrete_subtree()
    assert len(concrete) == 66
    assert schema.resolve(type_class_name("circuit_00")).is_subclass_of(
        schema.resolve("CircuitEdge")
    )


def test_same_graph_under_both_schemas():
    _, flat = build(False)
    _, sub = build(True)
    assert flat.nodes == sub.nodes
    assert flat.edges == sub.edges
    assert flat.chain_heads == sub.chain_heads
    assert flat.hub_cards == sub.hub_cards


def test_hub_cards_have_large_irrelevant_indegree():
    store, handles = build(True)
    noise = store.schema.edge_class("NoiseEdge")
    vertical = store.schema.edge_class("VerticalEdge")
    hub = handles.hub_cards[0]
    noise_in = store.in_edges(hub, CURRENT, [noise])
    vertical_in = store.in_edges(hub, CURRENT, [vertical])
    # Relevant in-edges: the shelf link plus the ports the card carries.
    assert 2 <= len(vertical_in) <= 200
    # Noise dominates: this is what the flat load must wade through.
    assert len(noise_in) >= 3 * len(vertical_in)


def test_active_cards_carry_ports():
    store, handles = build(True)
    vertical = store.schema.edge_class("VerticalEdge")
    active = [len(store.in_edges(c, CURRENT, [vertical])) for c in handles.active_cards[:10]]
    inactive = [
        len(store.in_edges(c, CURRENT, [vertical]))
        for c in handles.cards[:10] if c not in set(handles.active_cards)
    ]
    assert min(active) >= 2
    assert all(count <= 1 for count in inactive)


def test_chains_reach_cores():
    store, handles = build(True)
    planner = Planner(store.schema, CardinalityEstimator(store))
    head = handles.chain_heads[0]
    program = planner.compile(f"Entity(id={head})->[CircuitEdge()]{{1,4}}->Entity()")
    found = store.find_pathways(program, CURRENT)
    targets = {p.target.get("kind") for p in found}
    assert "core" in targets


@pytest.mark.parametrize("subclassed", [False, True])
def test_workload_instances_runnable(subclassed):
    store, handles = build(subclassed)
    planner = Planner(store.schema, CardinalityEstimator(store))
    workload = table2_workload(handles, subclassed, instances=3, seed=4712)
    assert set(workload) == {"service path", "reverse path", "top-down", "bottom-up"}
    for kind, instances in workload.items():
        assert instances, kind
        program = planner.compile(instances[0].rpe)
        store.find_pathways(program, CURRENT)  # must not raise


def test_both_variants_return_identical_paths():
    # The §6 reload must not change query *results*, only their speed.
    flat_store, flat_handles = build(False)
    sub_store, sub_handles = build(True)
    flat_wl = table2_workload(flat_handles, False, instances=4, seed=4712)
    sub_wl = table2_workload(sub_handles, True, instances=4, seed=4712)
    for kind in flat_wl:
        for flat_instance, sub_instance in zip(flat_wl[kind], sub_wl[kind]):
            flat_planner = Planner(flat_store.schema, CardinalityEstimator(flat_store))
            sub_planner = Planner(sub_store.schema, CardinalityEstimator(sub_store))
            flat_paths = {
                p.key()
                for p in flat_store.find_pathways(
                    flat_planner.compile(flat_instance.rpe), CURRENT
                )
            }
            sub_paths = {
                p.key()
                for p in sub_store.find_pathways(
                    sub_planner.compile(sub_instance.rpe), CURRENT
                )
            }
            assert flat_paths == sub_paths, kind
