"""Churn simulation: history growth, migrations, outage windows."""

import pytest

from repro.errors import NepalError
from repro.inventory.churn import ChurnParams, ChurnSimulator, DAY_SECONDS
from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology
from repro.schema.builtin import build_network_schema
from repro.storage.base import TimeScope
from repro.storage.memgraph.store import MemGraphStore
from repro.temporal.clock import TransactionClock

T0 = 1_000_000.0

PARAMS = TopologyParams(
    services=2, vms=40, virtual_networks=10, virtual_routers=4,
    racks=3, hosts_per_rack=3, spine_switches=2, routers=2,
    seed=20180610,
)


@pytest.fixture
def populated():
    store = MemGraphStore(build_network_schema(), clock=TransactionClock(start=T0))
    handles = VirtualizedServiceTopology(PARAMS).apply(store)
    return store, handles


def run_churn(store, handles, **overrides):
    params = ChurnParams(**{"days": 20, "growth_ratio": 0.10, "seed": 7, **overrides})
    simulator = ChurnSimulator(store, params)
    migratable = {vm: handles.hosts for vm in handles.vms}
    return simulator.run(handles.all_nodes(), handles.all_edges(), migratable)


def test_requires_pinned_clock():
    store = MemGraphStore(build_network_schema())  # wall clock
    with pytest.raises(NepalError, match="pinned"):
        ChurnSimulator(store)


def test_clock_advances_by_days(populated):
    store, handles = populated
    report = run_churn(store, handles)
    assert report.end_time >= report.start_time + 20 * DAY_SECONDS
    assert report.days == 20


def test_history_growth_near_target(populated):
    store, handles = populated
    report = run_churn(store, handles)
    assert report.history_versions > 0
    # Within a loose band of the requested ratio (some events are no-ops,
    # and migrations/flaps write two rows).
    assert 0.02 <= report.growth <= 0.30


def test_current_graph_stays_consistent(populated):
    store, handles = populated
    run_churn(store, handles)
    scope = TimeScope.current()
    # Every VM still has exactly one current placement.
    for vm in handles.vms:
        placements = [
            e for e in store.out_edges(vm, scope) if e.cls.name == "OnServer"
        ]
        assert len(placements) == 1, vm


def test_migrations_visible_in_time_travel(populated):
    store, handles = populated
    report = run_churn(store, handles, migration_fraction=0.6, growth_ratio=0.2)
    scope_then = TimeScope.at(report.start_time + 1)
    scope_now = TimeScope.current()
    moved = 0
    for vm in handles.vms:
        then = {e.target_uid for e in store.out_edges(vm, scope_then)
                if e.cls.name == "OnServer"}
        now = {e.target_uid for e in store.out_edges(vm, scope_now)
               if e.cls.name == "OnServer"}
        if then and now and then != now:
            moved += 1
    assert moved >= 3


def test_flaps_create_outage_gaps(populated):
    from repro.temporal.interval import Interval, IntervalSet

    store, handles = populated
    report = run_churn(store, handles, flap_fraction=0.5, growth_ratio=0.2)
    window = Interval(report.start_time, report.end_time + 1)
    gaps = 0
    for uid in handles.all_edges():
        versions = store.versions(uid, window)
        if len(versions) > 1:
            existence = IntervalSet(v.period for v in versions)
            if len(existence) > 1:
                gaps += 1
    assert gaps >= 3


def test_deterministic(populated):
    store_a, handles_a = populated
    report_a = run_churn(store_a, handles_a)
    store_b = MemGraphStore(build_network_schema(), clock=TransactionClock(start=T0))
    handles_b = VirtualizedServiceTopology(PARAMS).apply(store_b)
    report_b = run_churn(store_b, handles_b)
    assert report_a.events == report_b.events
    assert report_a.history_versions == report_b.history_versions
