"""The virtualized service topology reproduces the Figure 2 layer model."""

import pytest

from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology
from repro.storage.base import TimeScope
from repro.storage.memgraph.store import MemGraphStore
from repro.schema.builtin import build_network_schema
from repro.temporal.clock import TransactionClock

CURRENT = TimeScope.current()

SMALL = TopologyParams(
    services=3, vms=60, virtual_networks=15, virtual_routers=6,
    racks=4, hosts_per_rack=4, spine_switches=3, routers=2,
    seed=20180610,
)


@pytest.fixture(scope="module")
def topology():
    store = MemGraphStore(build_network_schema(), clock=TransactionClock(start=1.0))
    handles = VirtualizedServiceTopology(SMALL).apply(store)
    return store, handles


def test_deterministic_per_seed():
    store_a = MemGraphStore(build_network_schema(), clock=TransactionClock(start=1.0))
    store_b = MemGraphStore(build_network_schema(), clock=TransactionClock(start=1.0))
    a = VirtualizedServiceTopology(SMALL).apply(store_a)
    b = VirtualizedServiceTopology(SMALL).apply(store_b)
    assert a.summary() == b.summary()
    assert a.vm_host == b.vm_host


def test_layer_population(topology):
    _, handles = topology
    assert len(handles.services) == 3
    assert len(handles.hosts) == 16
    assert len(handles.vms) == 60
    assert handles.vnfs and handles.vfcs
    # Every VFC runs on exactly one container, every VM on one host.
    assert set(handles.vfc_vm) == set(handles.vfcs)
    assert set(handles.vm_host) == set(handles.vms)


def test_default_scale_approximates_paper():
    store = MemGraphStore(build_network_schema(), clock=TransactionClock(start=1.0))
    handles = VirtualizedServiceTopology(TopologyParams(seed=20180610)).apply(store)
    nodes, edges = len(handles.all_nodes()), len(handles.all_edges())
    # Paper: ~2,000 nodes and ~11,000 edges; we accept the right magnitude.
    assert 1500 <= nodes <= 2600
    assert 5000 <= edges <= 13000
    # Paper: 33 distinct VNFs; ours lands nearby.
    assert 25 <= len(handles.vnfs) <= 60


def test_vertical_edges_descend_layers(topology):
    store, handles = topology
    for uid in handles.vertical_edges[:200]:
        edge = store.get_element(uid, CURRENT)
        source = store.get_element(edge.source_uid, CURRENT)
        target = store.get_element(edge.target_uid, CURRENT)
        if edge.cls.name == "ComposedOf":
            assert source.instance_of(store.schema.resolve("Service")) or source.instance_of(
                store.schema.resolve("VNF")
            )
        elif edge.cls.name == "OnVM":
            assert source.instance_of(store.schema.resolve("VFC"))
            assert target.instance_of(store.schema.resolve("Container"))
        elif edge.cls.name == "OnServer":
            assert source.instance_of(store.schema.resolve("Container"))
            assert target.instance_of(store.schema.resolve("Host"))


def test_physical_connectivity_is_reciprocal(topology):
    # Figure 2's underlay: paths between hosts have even hop counts because
    # every physical link is stored in both directions.
    store, handles = topology
    host = handles.hosts[0]
    out_peers = {
        edge.target_uid for edge in store.out_edges(host, CURRENT)
        if edge.cls.name == "ServerSwitch"
    }
    in_peers = {
        edge.source_uid for edge in store.in_edges(host, CURRENT)
        if edge.cls.name == "ServerSwitch"
    }
    assert out_peers == in_peers and out_peers


def test_vnf_to_host_path_exists_for_every_vnf(topology):
    from repro.plan.planner import Planner
    from repro.stats.cardinality import CardinalityEstimator

    store, handles = topology
    planner = Planner(store.schema, CardinalityEstimator(store))
    for vnf in handles.vnfs:
        program = planner.compile(f"VNF(id={vnf})->[Vertical()]{{1,6}}->Host()")
        assert store.find_pathways(program, CURRENT), f"VNF {vnf} unreachable"


def test_routers_carry_routing_tables(topology):
    store, handles = topology
    router = store.get_element(handles.routers[0], CURRENT)
    table = router.get("routing_table")
    assert table and all("address" in entry for entry in table)
