"""Exact pathway validity (the §4 maximal-range semantics)."""

import pytest

from repro.model.pathway import Pathway
from repro.rpe.match import compile_matcher
from repro.rpe.parser import parse_rpe
from repro.storage.base import TimeScope
from repro.temporal.interval import Interval
from repro.temporal.validity import pathway_validity
from tests.conftest import T0


def matcher(store, text):
    return compile_matcher(parse_rpe(text).bind(store.schema))


def current_pathway(store, *uids):
    # Fetch representatives as of creation time so the pathway can be built
    # even after later deletions (validity only keys on uids).
    scope = TimeScope.at(T0 + 0.5)
    return Pathway([store.get_element(uid, scope) for uid in uids])


@pytest.fixture
def placed(mem_store, clock):
    host = mem_store.insert_node("Host", {"name": "h"})
    vm = mem_store.insert_node("VM", {"name": "v", "status": "Green"})
    edge = mem_store.insert_edge("OnServer", vm, host)
    return mem_store, clock, vm, edge, host


def test_structural_lifetime(placed):
    store, clock, vm, edge, host = placed
    pathway = current_pathway(store, vm, edge, host)
    validity = pathway_validity(store, pathway, matcher(store, "VM()->OnServer()->Host()"))
    assert validity.intervals == (Interval.since(T0),)


def test_edge_outage_splits_ranges(placed):
    store, clock, vm, edge, host = placed
    clock.set(T0 + 100)
    store.delete_element(edge)
    clock.set(T0 + 200)
    store.insert_edge("OnServer", vm, host, uid=edge)
    pathway = current_pathway(store, vm, edge, host)
    validity = pathway_validity(store, pathway, matcher(store, "VM()->OnServer()->Host()"))
    assert validity.intervals == (
        Interval(T0, T0 + 100),
        Interval.since(T0 + 200),
    )


def test_field_predicate_clips(placed):
    # The range ends when the *predicate* stops holding, not when the
    # element disappears — the subtle case the paper's result1 illustrates.
    store, clock, vm, edge, host = placed
    clock.set(T0 + 100)
    store.update_element(vm, {"status": "Red"})
    clock.set(T0 + 300)
    store.update_element(vm, {"status": "Green"})
    pathway = current_pathway(store, vm, edge, host)
    validity = pathway_validity(
        store, pathway, matcher(store, "VM(status='Green')->OnServer()->Host()")
    )
    assert validity.intervals == (
        Interval(T0, T0 + 100),
        Interval.since(T0 + 300),
    )


def test_mismatched_pathway_is_never_valid(placed):
    store, clock, vm, edge, host = placed
    pathway = current_pathway(store, vm, edge, host)
    validity = pathway_validity(store, pathway, matcher(store, "Docker()->OnServer()->Host()"))
    assert validity.is_empty()


def test_validity_is_maximal_not_clipped_to_window(placed):
    # pathway_validity knows nothing about query windows; the executor
    # clips for qualification only.  Ranges start at creation time.
    store, clock, vm, edge, host = placed
    pathway = current_pathway(store, vm, edge, host)
    validity = pathway_validity(store, pathway, matcher(store, "VM()->OnServer()->Host()"))
    assert validity.first_instant() == T0


def test_wildcard_elements_contribute_their_periods(placed):
    # VM()->Host(): the edge is a skipped element but its existence still
    # bounds the pathway's validity.
    store, clock, vm, edge, host = placed
    clock.set(T0 + 50)
    store.delete_element(edge)
    pathway = current_pathway(store, vm, edge, host)
    validity = pathway_validity(store, pathway, matcher(store, "VM()->Host()"))
    assert validity.intervals == (Interval(T0, T0 + 50),)
