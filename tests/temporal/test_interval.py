"""Interval algebra: unit tests plus hypothesis laws."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import TemporalError
from repro.temporal.interval import (
    FOREVER,
    Interval,
    IntervalSet,
    format_timestamp,
    intersect_all,
    parse_timestamp,
)


class TestTimestampParsing:
    def test_parse_paper_literal(self):
        ts = parse_timestamp("2017-02-15 10:00:00")
        assert format_timestamp(ts) == "2017-02-15 10:00:00"

    def test_parse_short_forms(self):
        assert parse_timestamp("2017-02-15 10:00") == parse_timestamp(
            "2017-02-15 10:00:00"
        )
        assert parse_timestamp("2017-02-15") < parse_timestamp("2017-02-15 10:00")

    def test_parse_numbers_pass_through(self):
        assert parse_timestamp(12.5) == 12.5
        assert parse_timestamp(3) == 3.0

    def test_parse_quoted(self):
        assert parse_timestamp("'2017-02-15 10:00:00'") == parse_timestamp(
            "2017-02-15 10:00:00"
        )

    def test_parse_garbage_raises(self):
        with pytest.raises(TemporalError):
            parse_timestamp("yesterday-ish")

    def test_format_forever_is_open(self):
        assert format_timestamp(FOREVER) == ""


class TestInterval:
    def test_empty_interval_rejected(self):
        with pytest.raises(TemporalError):
            Interval(5.0, 5.0)
        with pytest.raises(TemporalError):
            Interval(6.0, 5.0)

    def test_half_open_membership(self):
        interval = Interval(1.0, 2.0)
        assert interval.contains(1.0)
        assert not interval.contains(2.0)
        assert interval.contains(1.999)

    def test_still_current(self):
        assert Interval.since(10.0).is_current
        assert not Interval(1.0, 2.0).is_current

    def test_at_point(self):
        point = Interval.at(42.0)
        assert point.contains(42.0)
        assert point.duration() > 0

    def test_overlap_vs_meet(self):
        a, b = Interval(0.0, 1.0), Interval(1.0, 2.0)
        assert not a.overlaps(b)  # half-open: they only touch
        assert a.meets_or_overlaps(b)

    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 3).intersect(Interval(3, 9)) is None


class TestIntervalSet:
    def test_normalization_merges_touching(self):
        merged = IntervalSet([Interval(0, 1), Interval(1, 2), Interval(5, 6)])
        assert merged.intervals == (Interval(0, 2), Interval(5, 6))

    def test_normalization_merges_overlapping_unordered(self):
        merged = IntervalSet([Interval(3, 9), Interval(0, 4)])
        assert merged.intervals == (Interval(0, 9),)

    def test_contained_interval_absorbed(self):
        merged = IntervalSet([Interval(0, 10), Interval(2, 3)])
        assert merged.intervals == (Interval(0, 10),)

    def test_contains_binary_search(self):
        s = IntervalSet([Interval(0, 1), Interval(2, 3), Interval(4, 5)])
        assert s.contains(2.5)
        assert not s.contains(3.5)
        assert not s.contains(3.0)  # half-open

    def test_intersect(self):
        a = IntervalSet([Interval(0, 5), Interval(10, 15)])
        b = IntervalSet([Interval(3, 12)])
        assert a.intersect(b).intervals == (Interval(3, 5), Interval(10, 12))

    def test_union(self):
        a = IntervalSet([Interval(0, 2)])
        b = IntervalSet([Interval(1, 4)])
        assert a.union(b).intervals == (Interval(0, 4),)

    def test_complement(self):
        s = IntervalSet([Interval(2, 3), Interval(5, 6)])
        gaps = s.complement(Interval(0, 10))
        assert gaps.intervals == (Interval(0, 2), Interval(3, 5), Interval(6, 10))

    def test_complement_of_empty_is_window(self):
        assert IntervalSet.empty().complement(Interval(0, 1)).intervals == (
            Interval(0, 1),
        )

    def test_clip(self):
        s = IntervalSet([Interval(0, 10)])
        assert s.clip(Interval(3, 5)).intervals == (Interval(3, 5),)

    def test_first_last_instant(self):
        s = IntervalSet([Interval(2, 3), Interval.since(7)])
        assert s.first_instant() == 2
        assert s.last_instant() == FOREVER
        assert IntervalSet.empty().first_instant() is None

    def test_total_duration(self):
        s = IntervalSet([Interval(0, 2), Interval(5, 6)])
        assert s.total_duration() == 3.0

    def test_intersect_all(self):
        sets = [
            IntervalSet([Interval(0, 10)]),
            IntervalSet([Interval(5, 20)]),
            IntervalSet([Interval(0, 7)]),
        ]
        assert intersect_all(sets).intervals == (Interval(5, 7),)
        assert intersect_all([]).contains(12345.0)

    def test_empty_and_always_singletons(self):
        assert IntervalSet.empty().is_empty()
        assert IntervalSet.always().contains(-1e18)
        assert not IntervalSet.empty()
        assert IntervalSet.always()


# ---------------------------------------------------------------------------
# property-based laws
# ---------------------------------------------------------------------------

_times = st.floats(
    min_value=0, max_value=1e9, allow_nan=False, allow_infinity=False
)


@st.composite
def interval_sets(draw):
    pairs = draw(st.lists(st.tuples(_times, _times), max_size=6))
    intervals = [
        Interval(min(a, b), max(a, b)) for a, b in pairs if not math.isclose(a, b)
    ]
    return IntervalSet(intervals)


@given(interval_sets(), interval_sets())
def test_intersection_commutative(a, b):
    assert a.intersect(b) == b.intersect(a)


@given(interval_sets(), interval_sets())
def test_union_commutative(a, b):
    assert a.union(b) == b.union(a)


@given(interval_sets(), interval_sets(), interval_sets())
def test_intersection_associative(a, b, c):
    assert a.intersect(b).intersect(c) == a.intersect(b.intersect(c))


@given(interval_sets(), interval_sets(), _times)
def test_membership_homomorphic(a, b, point):
    assert a.intersect(b).contains(point) == (a.contains(point) and b.contains(point))
    assert a.union(b).contains(point) == (a.contains(point) or b.contains(point))


@given(interval_sets())
def test_normalization_is_canonical(s):
    # Re-normalizing the normalized intervals must be a no-op.
    assert IntervalSet(s.intervals) == s
    # Adjacent intervals never touch after normalization.
    for left, right in zip(s.intervals, s.intervals[1:]):
        assert left.end < right.start


@given(interval_sets(), _times, _times)
def test_complement_partitions_window(s, a, b):
    if math.isclose(a, b):
        return
    window = Interval(min(a, b), max(a, b))
    inside = s.clip(window)
    outside = s.complement(window)
    assert inside.intersect(outside).is_empty()
    assert inside.union(outside).clip(window) == IntervalSet([window])
