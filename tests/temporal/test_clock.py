"""Transaction clock behaviour."""

import time

import pytest

from repro.errors import TemporalError
from repro.temporal.clock import TransactionClock


def test_pinned_clock_is_deterministic():
    clock = TransactionClock(start=100.0)
    assert clock.pinned
    assert clock.now() == 100.0
    assert clock.now() == 100.0


def test_advance_moves_forward():
    clock = TransactionClock(start=100.0)
    assert clock.advance(50) == 150.0
    assert clock.now() == 150.0


def test_advance_rejects_negative_and_nan():
    clock = TransactionClock(start=0.0)
    with pytest.raises(TemporalError):
        clock.advance(-1)
    with pytest.raises(TemporalError):
        clock.advance(float("nan"))


def test_set_cannot_move_backwards():
    clock = TransactionClock(start=100.0)
    with pytest.raises(TemporalError):
        clock.set(50.0)
    assert clock.set(200.0) == 200.0


def test_tick_is_strictly_monotone():
    clock = TransactionClock(start=100.0)
    first = clock.now()
    second = clock.tick()
    assert second > first
    assert clock.now() == second


def test_wall_clock_mode_tracks_time():
    clock = TransactionClock()
    assert not clock.pinned
    a = clock.now()
    assert a <= time.time() + 1
    b = clock.now()
    assert b >= a


def test_pinning_a_wall_clock():
    clock = TransactionClock()
    future = time.time() + 1000
    clock.set(future)
    assert clock.pinned
    assert clock.now() == future
