"""Shared utilities and the error hierarchy."""

import threading

import pytest

from repro import errors
from repro.util.ids import IdAllocator
from repro.util.text import format_table, indent_block, pluralize


class TestIdAllocator:
    def test_monotone(self):
        alloc = IdAllocator()
        assert [alloc.next() for _ in range(3)] == [1, 2, 3]
        assert alloc.last == 3

    def test_observe_skips_past_external_ids(self):
        alloc = IdAllocator()
        alloc.observe(100)
        assert alloc.next() == 101
        alloc.observe(50)  # lower observations never rewind
        assert alloc.next() == 102

    def test_custom_start(self):
        assert IdAllocator(start=10).next() == 10

    def test_thread_safety(self):
        alloc = IdAllocator()
        seen = []

        def grab():
            for _ in range(500):
                seen.append(alloc.next())

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(seen) == len(set(seen)) == 2000


class TestText:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = table.splitlines()
        assert lines[0].startswith("a ")
        assert "-+-" in lines[1]
        assert lines[2].startswith("1 ")
        assert lines[3].startswith("333")

    def test_format_table_empty_rows(self):
        table = format_table(["col"], [])
        assert "col" in table

    def test_indent_block(self):
        assert indent_block("a\nb", "> ") == "> a\n> b"

    def test_pluralize(self):
        assert pluralize(1, "path") == "1 path"
        assert pluralize(2, "path") == "2 paths"
        assert pluralize(2, "query", "queries") == "2 queries"


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "name",
        [
            "SchemaError", "DataTypeError", "ValidationError", "UniquenessError",
            "ParseError", "TypeCheckError", "PlanningError",
            "UnanchoredQueryError", "UnboundedQueryError", "StorageError",
            "UnknownElementError", "TemporalError", "FederationError",
        ],
    )
    def test_everything_derives_from_nepal_error(self, name):
        error_class = getattr(errors, name)
        assert issubclass(error_class, errors.NepalError)

    def test_specializations(self):
        assert issubclass(errors.UniquenessError, errors.ValidationError)
        assert issubclass(errors.DataTypeError, errors.SchemaError)
        assert issubclass(errors.UnanchoredQueryError, errors.PlanningError)
        assert issubclass(errors.UnknownElementError, errors.StorageError)

    def test_parse_error_snippet(self):
        error = errors.ParseError("boom", position=5, text="0123456789")
        assert "offset 5" in str(error)
        assert error.position == 5
