"""Rootdir pytest plugin: options that must exist before collection.

``pytest_addoption`` only takes effect in an *initial* conftest —
``tests/conftest.py`` is discovered too late when pytest is invoked from
the repository root — so repo-wide options live here.
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite golden files from current output instead of "
             "asserting against them (also: NEPAL_UPDATE_GOLDENS=1)",
    )


@pytest.fixture
def update_goldens(request: pytest.FixtureRequest) -> bool:
    """True when this run should refresh golden files, not compare."""
    return bool(request.config.getoption("--update-goldens")) or bool(
        os.environ.get("NEPAL_UPDATE_GOLDENS")
    )
